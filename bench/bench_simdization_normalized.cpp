// Extension bench for two Section 7.2 proposals:
//
//  1. "Implement the basic ATM tasks ... in commodity processors that
//     provide efficient, vector-based parallel computation" — the
//     Xeon Phi / AVX-512 VectorBackend vs the paper's platforms.
//  2. "Obtain or determine the maximum throughput capacity ... of as many
//     of these systems as possible. This information can be used to
//     normalize the graphs of the various systems" — per-platform peak
//     throughput and throughput-normalized task times, which compare the
//     *efficiency* of each architecture on ATM rather than its raw size.
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/vector_backend.hpp"
#include "src/core/table.hpp"
#include "src/mimd/vector_model.hpp"
#include "src/simt/device_spec.hpp"

namespace {

using namespace atm;

/// Peak sustained throughput estimate in giga-(32-bit)-ops per second,
/// from each platform's documented width and clock.
double peak_gops(const std::string& name, std::size_t aircraft) {
  if (name.find("9800") != std::string::npos) {
    return simt::geforce_9800_gt().total_cores() *
           simt::geforce_9800_gt().clock_ghz;
  }
  if (name.find("880M") != std::string::npos) {
    return simt::gtx_880m().total_cores() * simt::gtx_880m().clock_ghz;
  }
  if (name.find("Titan") != std::string::npos) {
    return simt::titan_x_pascal().total_cores() *
           simt::titan_x_pascal().clock_ghz;
  }
  if (name.find("ClearSpeed") != std::string::npos) {
    return 192 * 0.210 / 2.0;  // 192 PEs, 210 MHz, 2 cycles/op
  }
  if (name.find("STARAN") != std::string::npos) {
    // One PE per aircraft, one 32-bit word op per 0.16 us per PE.
    return static_cast<double>(aircraft) * (1.0 / 0.16e-6) / 1e9;
  }
  if (name.find("Phi") != std::string::npos) {
    return mimd::VectorModel(mimd::xeon_phi_spec()).peak_gops();
  }
  // 16-core Xeon with 4-wide SSE/AVX-era units.
  return 16 * 2.4 * 4.0;
}

}  // namespace

int main() {
  constexpr std::size_t kAircraft = 4000;
  const airfield::FlightDb field = airfield::make_airfield(kAircraft, 42);

  auto platforms = tasks::make_platforms(tasks::PlatformSet::kAllPlatforms);
  platforms.push_back(tasks::make_xeon_phi());
  platforms.push_back(
      std::make_unique<tasks::VectorBackend>(mimd::avx512_desktop_spec()));

  core::TextTable table({"platform", "peak [GOPS]", "task1 [ms]",
                         "task23 [ms]", "task23 x peak (norm.)",
                         "deterministic?"});
  double best_norm = 1e300;
  std::string best_name;
  for (auto& backend : platforms) {
    backend->load(field);
    core::Rng rng(7);
    airfield::RadarFrame frame = backend->generate_radar(rng, {}, nullptr);
    const double t1 = backend->run_task1(frame, {}).modeled_ms;
    const double t23 = backend->run_task23({}).modeled_ms;
    const double gops = peak_gops(backend->name(), kAircraft);
    // Normalized cost: time x peak = how many giga-op-seconds of machine
    // the task consumed. Lower = the architecture fits ATM better.
    const double norm = t23 * gops;
    if (norm < best_norm) {
      best_norm = norm;
      best_name = backend->name();
    }
    table.begin_row();
    table.add_cell(backend->name());
    table.add_cell(gops, 1);
    table.add_cell(t1, 4);
    table.add_cell(t23, 4);
    table.add_cell(norm, 1);
    table.add_cell(backend->deterministic() ? std::string("yes")
                                            : std::string("no"));
  }
  std::cout << "\n== SIMDization + throughput normalization ("
            << kAircraft << " aircraft) ==\n"
            << table;
  std::cout << "\nMost ATM-efficient architecture by normalized cost: "
            << best_name
            << "\nReading: raw time orders by machine width (the GPUs win), "
               "but normalizing by peak\nthroughput flips the picture — the "
               "lock-step architectures (vector units and the\nassociative "
               "processors) spend far fewer op-seconds per task than the "
               "GPUs burn with\ntheir enormous width, and the lock-based "
               "multi-core is an order of magnitude less\nefficient than "
               "everything else: the paper's Section 7.2 conjecture, "
               "quantified.\n";
  return 0;
}
