// Extension bench: processing *all* radar (the unsimplified environment).
//
// Paper Section 4.1: "most aircraft in the US are within the range of 2 to
// 6 radars" but "current air traffic control systems are unable to process
// most of the radar received, due to the computational complexity ...
// this makes the processing of all radar as a part of ATM an ideal tool to
// use in testing the ability of different architectures to handle
// real-time computations." This bench sweeps radar coverage (tower count)
// at a fixed aircraft count and measures the multi-return correlation on
// every platform, plus the correlation-quality payoff.
#include <iostream>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/platforms.hpp"
#include "src/core/table.hpp"

int main() {
  using namespace atm;
  constexpr std::size_t kAircraft = 2000;

  // Tower grids 1x1 (the paper's single-return regime) through 4x4.
  std::cout << "\n== Multi-tower correlation: " << kAircraft
            << " aircraft, growing radar coverage ==\n";
  core::TextTable table({"towers", "returns", "coverage", "platform",
                         "modeled [ms]", "matched", "redundant",
                         "within 0.5 s period?"});
  for (const int grid : {1, 2, 3, 4}) {
    airfield::TowerLayoutParams layout;
    layout.grid = grid;
    layout.range_nm = grid == 1 ? 200.0 : 150.0;
    const auto towers = airfield::make_tower_layout(7, layout);

    auto platforms = tasks::make_platforms(tasks::PlatformSet::kAllPlatforms);
    platforms.push_back(tasks::make_xeon_phi());
    for (auto& backend : platforms) {
      backend->load(airfield::make_airfield(kAircraft, 42));
      core::Rng rng(9);
      auto frame = airfield::generate_multi_radar(backend->state(), towers,
                                                  rng, {});
      const tasks::MultiRadarResult r = backend->run_multi_task1(frame, {});
      table.begin_row();
      table.add_cell(static_cast<long long>(towers.size()));
      table.add_cell(static_cast<long long>(frame.size()));
      table.add_cell(airfield::mean_coverage(frame, kAircraft), 2);
      table.add_cell(backend->name());
      table.add_cell(r.modeled_ms, 3);
      table.add_cell(static_cast<long long>(r.stats.matched_aircraft));
      table.add_cell(static_cast<long long>(r.stats.redundant_returns));
      table.add_cell(r.modeled_ms < 500.0 ? std::string("yes")
                                          : std::string("NO"));
    }
  }
  std::cout << table;
  std::cout << "\nObservation: coverage multiplies the correlation work "
               "(the frame grows ~4x from 1\nto 16 towers) — the platforms "
               "that were comfortable in the single-return regime\nabsorb "
               "it, while the multi-core's margin evaporates first: the "
               "paper's point about\nwhy processing all radar stresses "
               "architectures.\n";
  return 0;
}
