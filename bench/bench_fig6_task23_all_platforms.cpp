// Figure 6 reproduction: Tasks 2+3 (collision detection & resolution)
// timings on all six platforms across aircraft counts.
//
// Expected shape: NVIDIA cards lowest; STARAN/ClearSpeed in the middle
// (linear-ish); Xeon far above with the steepest growth.
#include <iostream>

#include "bench/common.hpp"
#include "src/atm/platforms.hpp"

int main() {
  using namespace atm;
  const auto sweep = bench::default_sweep();
  std::vector<bench::Series> series;
  for (auto& backend :
       tasks::make_platforms(tasks::PlatformSet::kAllPlatforms)) {
    series.push_back(
        bench::measure_series(*backend, bench::Task::kTask23, sweep));
  }
  bench::print_figure_table(
      "Figure 6: Tasks 2+3 (collision detection & resolution), all "
      "platforms",
      series);
  bench::print_curve_fits(series);
  std::cout << "\nPASS criteria: every NVIDIA column < STARAN/ClearSpeed/"
               "Xeon at every n;\nXeon grows fastest and dominates at large "
               "n.\n";
  return 0;
}
