// A-2 ablation: the bounding-box doubling retries of Task 1.
//
// Section 5.1 fixes the retry policy: a 1 x 1 nm box, then exactly two
// doubling passes (2 x 2 then 4 x 4) for still-unmatched radars. This
// bench sweeps the retry count and the radar noise level and reports what
// each pass buys: correlation rate, ambiguity, and the modeled Titan X
// cost of the extra passes.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/core/table.hpp"

int main() {
  using namespace atm;
  constexpr std::size_t kAircraft = 2000;

  for (const double noise : {0.2, 0.4, 0.8}) {
    core::TextTable table({"retries", "passes run", "matched", "unmatched",
                           "discarded", "ambiguous", "correct",
                           "Titan X t1 [ms]"});
    for (int retries = 0; retries <= 3; ++retries) {
      tasks::CudaBackend card(simt::titan_x_pascal());
      card.load(airfield::make_airfield(kAircraft, 42));
      core::Rng rng(7);
      airfield::RadarParams radar;
      radar.noise_nm = noise;
      airfield::RadarFrame frame = card.generate_radar(rng, radar, nullptr);
      tasks::Task1Params params;
      params.retries = retries;
      const tasks::Task1Result result = card.run_task1(frame, params);
      table.begin_row();
      table.add_cell(static_cast<long long>(retries));
      table.add_cell(static_cast<long long>(result.stats.passes));
      table.add_cell(static_cast<long long>(result.stats.matched));
      table.add_cell(static_cast<long long>(result.stats.unmatched_radars));
      table.add_cell(static_cast<long long>(result.stats.discarded_radars));
      table.add_cell(
          static_cast<long long>(result.stats.ambiguous_aircraft));
      table.add_cell(static_cast<long long>(
          airfield::count_correct_matches(frame)));
      table.add_cell(result.modeled_ms, 4);
    }
    std::printf("\n== Bounding-box retry ablation (%zu aircraft, "
                "noise %.1f nm) ==\n",
                kAircraft, noise);
    std::cout << table;
  }
  std::cout
      << "\nObservation: with the paper's noise regime almost everything "
         "correlates in pass 1\nand the retries are cheap insurance; as "
         "noise approaches the box size the retries\nrecover a substantial "
         "fraction of returns, at growing ambiguity and cost — which is\n"
         "why the paper stops doubling after two retries.\n";
  return 0;
}
