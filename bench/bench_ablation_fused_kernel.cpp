// A-1 ablation: the paper's fused CheckCollisionPath kernel vs a split
// detect / resolve pair.
//
// Section 4 motivates fusing Tasks 2+3 into one kernel: "it cuts overhead
// for memory and data transfer because we don't have to get information
// from one kernel function and transfer it back to the host ... then feed
// that into a totally different function". The split variant round-trips
// the per-aircraft critical flags through the host between detection and
// resolution. Results are identical by construction (asserted); only the
// modeled time differs.
#include <iostream>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/core/table.hpp"

int main() {
  using namespace atm;
  const auto sweep = bench::default_sweep();

  for (const auto& spec : {simt::geforce_9800_gt(), simt::gtx_880m(),
                           simt::titan_x_pascal()}) {
    core::TextTable table({"aircraft", "fused [ms]", "split [ms]",
                           "overhead", "results equal?"});
    for (const std::size_t n : sweep) {
      const airfield::FlightDb field = airfield::make_airfield(n, 42 + n);
      tasks::CudaBackend fused(spec);
      tasks::CudaBackend split(spec);
      fused.load(field);
      split.load(field);
      const tasks::Task23Result rf = fused.run_task23({});
      const tasks::Task23Result rs = split.run_task23_split({});
      table.begin_row();
      table.add_cell(n);
      table.add_cell(rf.modeled_ms, 4);
      table.add_cell(rs.modeled_ms, 4);
      char buf[32];
      std::snprintf(buf, sizeof buf, "+%.1f%%",
                    (rs.modeled_ms / rf.modeled_ms - 1.0) * 100.0);
      table.add_cell(std::string(buf));
      table.add_cell(rf.stats == rs.stats &&
                             fused.state().same_flight_state(split.state())
                         ? std::string("yes")
                         : std::string("NO"));
    }
    std::cout << "\n== Fused vs split CheckCollisionPath: " << spec.name
              << " ==\n"
              << table;
  }
  std::cout << "\nPASS criteria: split >= fused everywhere (the paper's "
               "fusion rationale), with the\nlargest relative penalty on "
               "the PCIe-2 9800 GT at small n, and identical results.\n";
  return 0;
}
