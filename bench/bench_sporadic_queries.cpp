// Extension bench: sporadic controller requests across fleet sizes.
//
// The associative processor's defining advantage (Section 2.2: hardware
// "broadcasts, associative searches, maximum and minimum reductions ...
// executed in constant time"): answering a controller query costs the AP
// the same whether it tracks 500 aircraft or 8000, while every
// scan-based platform pays linearly. This bench sweeps the fleet size at
// a fixed query batch and shows the flat AP row against the growing
// scan rows.
#include <iostream>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/extended/sporadic.hpp"
#include "src/atm/platforms.hpp"
#include "src/core/table.hpp"

int main() {
  using namespace atm;
  const std::vector<std::size_t> sweep =
      bench::maybe_smoke({500, 1000, 2000, 4000, 8000});
  constexpr int kBatch = 16;

  core::TextTable table({"aircraft", "platform", "queries", "hits",
                         "modeled [ms]", "ms / query"});
  std::vector<double> staran_ms;
  for (const std::size_t n : sweep) {
    auto platforms = tasks::make_platforms(tasks::PlatformSet::kAllPlatforms);
    platforms.push_back(tasks::make_xeon_phi());
    for (auto& backend : platforms) {
      backend->load(airfield::make_airfield(n, 42));
      (void)backend->run_display({});  // sector queries need sectors
      core::Rng qrng(7);
      tasks::SporadicParams params;
      params.queries_per_batch = kBatch;
      const auto batch = tasks::extended::make_query_batch(
          backend->state(), qrng, params);
      const tasks::SporadicResult r = backend->run_sporadic(batch, params);
      if (backend->name().find("STARAN") != std::string::npos) {
        staran_ms.push_back(r.modeled_ms);
      }
      table.begin_row();
      table.add_cell(n);
      table.add_cell(backend->name());
      table.add_cell(static_cast<long long>(r.stats.queries));
      table.add_cell(static_cast<long long>(r.stats.hits));
      table.add_cell(r.modeled_ms, 4);
      table.add_cell(r.modeled_ms / kBatch, 5);
    }
  }
  std::cout << "\n== Sporadic requests: " << kBatch
            << " controller queries per batch ==\n"
            << table;
  std::cout << "\nSTARAN per-batch time across the 16x fleet sweep: "
            << staran_ms.front() << " ms -> " << staran_ms.back()
            << " ms (hit-readout only)\nPASS criteria: the STARAN row is "
               "flat apart from responder readout of the hits; every\n"
               "scan-based platform grows ~linearly with the fleet.\n";
  return 0;
}
