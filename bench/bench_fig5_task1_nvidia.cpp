// Figure 5 reproduction: Task 1 timings on the three NVIDIA cards only.
//
// Expected shape: Titan X (Pascal) < GTX 880M < GeForce 9800 GT at every
// aircraft count; all three near-linear.
#include <iostream>

#include "bench/common.hpp"
#include "src/atm/platforms.hpp"

int main() {
  using namespace atm;
  const auto sweep = bench::default_sweep();
  std::vector<bench::Series> series;
  for (auto& backend :
       tasks::make_platforms(tasks::PlatformSet::kNvidiaOnly)) {
    series.push_back(
        bench::measure_series(*backend, bench::Task::kTask1, sweep));
  }
  bench::print_figure_table("Figure 5: Task 1, NVIDIA cards", series);
  bench::print_curve_fits(series);
  std::cout << "\nPASS criteria: Titan X < 880M < 9800 GT at every n; all "
               "near-linear.\n";
  return 0;
}
