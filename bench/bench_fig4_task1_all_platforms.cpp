// Figure 4 reproduction: Task 1 (tracking & correlation) timings on all
// six platforms across aircraft counts.
//
// Expected shape (paper Section 6.2): the three NVIDIA cards sit lowest
// with near-linear curves; STARAN and the ClearSpeed emulation are linear
// with steeper slopes; the 16-core Xeon grows super-linearly and sits far
// above everyone at scale.
#include <iostream>

#include "bench/common.hpp"
#include "src/atm/platforms.hpp"

int main() {
  using namespace atm;
  const auto sweep = bench::default_sweep();
  std::vector<bench::Series> series;
  for (auto& backend :
       tasks::make_platforms(tasks::PlatformSet::kAllPlatforms)) {
    series.push_back(
        bench::measure_series(*backend, bench::Task::kTask1, sweep));
  }
  bench::print_figure_table(
      "Figure 4: Task 1 (tracking & correlation), all platforms", series);
  bench::print_curve_fits(series);
  std::cout << "\nPASS criteria: every NVIDIA column < STARAN/ClearSpeed/"
               "Xeon at every n;\nXeon grows fastest and dominates at large "
               "n.\n";
  return 0;
}
