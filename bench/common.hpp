// Shared harness for the figure-reproduction benches.
//
// Every bench prints the same artifacts the paper's evaluation shows: a
// per-platform timing series over aircraft counts (the figure's data), and
// a MATLAB-style curve-fit summary (SSE / R-square / adjusted R-square /
// RMSE) that classifies each curve as linear or (near-linear) quadratic.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/atm/backend.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/curvefit.hpp"
#include "src/obs/trace.hpp"

namespace atm::bench {

/// Parse an optional `--scenario <name>` (or `--scenario=<name>`) flag
/// from a bench's argv, resolving it through the scenario registry.
/// Returns `fallback` when the flag is absent; prints the registry names
/// and calls std::exit(2) on an unknown name. Other arguments are left
/// for the bench to interpret.
[[nodiscard]] tasks::Scenario scenario_from_args(
    int argc, char** argv, const tasks::Scenario& fallback);

/// Process-wide trace sink for the figure benches. When the
/// ATM_BENCH_TRACE environment variable names a file, every
/// measure_series() sweep (and any pipeline bench that passes this sink
/// through PipelineConfig::trace) writes JSONL task events there for
/// tools/trace_summary.py and tools/plot_figures.py to consume; returns
/// nullptr when the variable is unset.
[[nodiscard]] obs::TraceSink* bench_trace_sink();

/// True when the ATM_BENCH_SMOKE environment variable is set non-empty
/// (and not "0"). CI sets it so the figure-reproduction step only checks
/// that every bench still runs end to end; the numbers it prints are not
/// meaningful measurements.
[[nodiscard]] bool smoke_mode();

/// Under smoke_mode(), truncate a sweep to its three smallest points
/// (the minimum the quadratic curve fits accept);
/// otherwise return it unchanged. Every bench routes its sweep (custom or
/// default_sweep()) through this so ATM_BENCH_SMOKE=1 bounds CI time.
[[nodiscard]] std::vector<std::size_t> maybe_smoke(
    std::vector<std::size_t> sweep);

/// Aircraft counts swept by the figure benches. The paper's exact sweep is
/// not published; this range shows every relationship the figures assert
/// (platform ordering, near-linear CUDA curves, the multi-core blow-up)
/// while every platform except the Xeon still meets its deadlines.
/// Already smoke-truncated via maybe_smoke().
[[nodiscard]] std::vector<std::size_t> default_sweep();

/// Parse an optional `--json <path>` (or `--json=<path>`) flag from a
/// bench's argv. Returns an empty string when the flag is absent. Other
/// arguments are left for the bench to interpret.
[[nodiscard]] std::string json_path_from_args(int argc, char** argv);

/// Hex FNV-1a digest over a task run's *outcome* counters (the work
/// counters — box_tests, pair tests/candidates, rescans, sector and
/// kernel bookkeeping — are excluded, matching the equivalence tests'
/// outcome_only strip). Two runs that agree on every outcome produce the
/// same digest regardless of broadphase, sharding, or kernel choice, so
/// a JSON report consumer can cross-check equivalence without rerunning.
[[nodiscard]] std::string outcome_digest(const tasks::Task1Stats& stats);
[[nodiscard]] std::string outcome_digest(const tasks::Task23Stats& stats);

/// Machine-readable bench report, written as one JSON document when the
/// bench passes `--json <path>`. Constructed with an empty path the
/// report is inert: every call is a no-op and write() succeeds. Schema:
///
///   {"bench": "<name>", "scenario": "<name>",
///    "params": {"<key>": <value>, ...},
///    "results": [{"<key>": <value>, ...}, ...]}
///
/// Params describe the run configuration (smoke mode, sweep, reps);
/// each result row carries one measurement (task, aircraft count,
/// wall/modeled ms, outcome digest, ...). CI's bench-smoke step writes
/// BENCH_<name>.json files and uploads them as artifacts.
class JsonReport {
 public:
  JsonReport(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  void set_scenario(const std::string& name) { scenario_ = name; }

  void add_param(const std::string& key, const std::string& value);
  void add_param(const std::string& key, long long value);
  void add_param(const std::string& key, double value);

  /// Start a new result row; add_field calls attach to the latest row.
  void begin_result();
  void add_field(const std::string& key, const std::string& value);
  void add_field(const std::string& key, long long value);
  void add_field(const std::string& key, double value);

  /// Write the accumulated document. Returns true on success and always
  /// when the report is disabled; prints a warning to stderr on failure.
  [[nodiscard]] bool write() const;

 private:
  void param_raw(const std::string& key, std::string encoded);
  void field_raw(const std::string& key, std::string encoded);

  std::string bench_;
  std::string path_;
  std::string scenario_;
  /// (key, pre-encoded JSON value) pairs, in insertion order.
  std::vector<std::pair<std::string, std::string>> params_;
  /// One pre-encoded `"k":v,...` body per result row.
  std::vector<std::string> results_;
};

/// A measured (aircraft count, modeled ms) series for one platform.
struct Series {
  std::string platform;
  std::vector<double> n;   ///< Aircraft counts.
  std::vector<double> ms;  ///< Modeled task time at each count.
};

/// Which task a sweep measures.
enum class Task { kTask1, kTask23 };

/// Measure one platform across the sweep. Task 1 timings are averaged over
/// `task1_periods` consecutive periods (the paper reports per-iteration
/// averages); Tasks 2+3 run once per point (they run once per major cycle).
[[nodiscard]] Series measure_series(tasks::Backend& backend, Task task,
                                    const std::vector<std::size_t>& sweep,
                                    int task1_periods = 4,
                                    std::uint64_t seed = 42);

/// Print the figure table: one row per aircraft count, one timing column
/// per platform.
void print_figure_table(const std::string& title,
                        const std::vector<Series>& series);

/// Print the MATLAB-style fit report for each platform's series: linear
/// and quadratic goodness of fit plus the shape classification.
void print_curve_fits(const std::vector<Series>& series);

/// Print one platform's full fit detail (Figures 8 and 9).
void print_fit_detail(const Series& series);

}  // namespace atm::bench
