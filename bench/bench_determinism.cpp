// T-V reproduction: the paper's determinism and worst-case claims
// (Sections 6.2 and 7).
//
//  * "each time we ran the program on any of the three machines, we would
//    get the exact same timings again and again" — repeated identical
//    workloads must produce zero timing variance on the CUDA, STARAN, and
//    ClearSpeed platforms;
//  * MIMD execution is "not predictable" — the Xeon's timings vary from
//    run to run;
//  * "the variation in time needed to handle various special situations
//    [is] no larger than 5 times the usual amount of time" — across the
//    periods of a real run, max Task 1 time stays within 5x the mean.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/core/stats.hpp"
#include "src/core/table.hpp"

namespace {

constexpr std::size_t kAircraft = 2000;
constexpr int kRuns = 3;

}  // namespace

int main() {
  using namespace atm;

  std::cout << "\n== Run-to-run timing variance (" << kRuns
            << " identical runs, " << kAircraft << " aircraft) ==\n";
  core::TextTable table({"platform", "run 1 t1 [ms]", "run 2 t1 [ms]",
                         "run 3 t1 [ms]", "stddev", "deterministic?"});
  for (int platform = 0; platform < 6; ++platform) {
    core::StreamingStats stats;
    std::vector<double> runs;
    std::string name;
    bool claims_deterministic = true;
    for (int run = 0; run < kRuns; ++run) {
      auto backends =
          tasks::make_platforms(tasks::PlatformSet::kAllPlatforms);
      auto& backend = backends[static_cast<std::size_t>(platform)];
      // The MIMD platform draws a fresh jitter seed per run — that *is*
      // the paper's point about asynchronous machines.
      if (auto* xeon = dynamic_cast<tasks::MimdBackend*>(backend.get())) {
        xeon->set_jitter_seed(1000 + static_cast<std::uint64_t>(run));
      }
      name = backend->name();
      claims_deterministic = backend->deterministic();
      tasks::PipelineConfig cfg;
      cfg.aircraft = kAircraft;
      cfg.major_cycles = 1;
      cfg.trace = bench::bench_trace_sink();
      const tasks::PipelineResult result = tasks::run_pipeline(*backend, cfg);
      const double mean_t1 = result.task1_ms.mean();
      stats.add(mean_t1);
      runs.push_back(mean_t1);
    }
    table.begin_row();
    table.add_cell(name);
    for (const double r : runs) table.add_cell(r, 6);
    table.add_cell(stats.stddev(), 6);
    table.add_cell(claims_deterministic ? std::string("yes (zero variance)")
                                        : std::string("no (MIMD jitter)"));
  }
  std::cout << table;

  std::cout << "\n== Worst-case vs usual Task 1 period (Titan X, 2 major "
               "cycles) ==\n";
  auto titan = tasks::make_titan_x_pascal();
  tasks::PipelineConfig cfg;
  cfg.aircraft = kAircraft;
  cfg.major_cycles = 2;
  cfg.trace = bench::bench_trace_sink();
  const tasks::PipelineResult result = tasks::run_pipeline(*titan, cfg);
  const auto& t1 = result.deadlines().task("task1").duration_ms;
  core::TextTable wc({"mean [ms]", "max [ms]", "max/mean",
                      "within paper's 5x bound?"});
  wc.begin_row();
  wc.add_cell(t1.mean(), 6);
  wc.add_cell(t1.max(), 6);
  wc.add_cell(t1.max() / t1.mean(), 3);
  wc.add_cell(t1.max() <= 5.0 * t1.mean() ? std::string("yes")
                                          : std::string("NO"));
  std::cout << wc;
  std::cout << "\nPASS criteria: zero stddev for the five deterministic "
               "platforms; nonzero for the Xeon;\nmax/mean <= 5.\n";
  return 0;
}
