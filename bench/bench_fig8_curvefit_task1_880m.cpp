// Figure 8 reproduction: curve fit of Task 1 timings on the GTX 880M.
//
// The paper: "The GTX 880M has a linear curve for its tracking and
// correlation timings as shown by its 'goodness of fit' values." We print
// the dense series plus the MATLAB-style fit table (SSE, R-square,
// adjusted R-square, RMSE) for the linear and quadratic models.
//
// Expected: linear R^2 close to 1 across the sweep. Our throughput model
// necessarily carries an N^2/device-width term (each of the N radar
// threads scans all N aircraft), so on the widest sweeps the quadratic
// model can edge out the linear fit — with a quadratic coefficient orders
// of magnitude below the linear term's contribution, which is the
// abstract's own summary: "the performance of NVIDIA accelerators
// increases only slightly faster than a linear graph".
#include <iostream>

#include "bench/common.hpp"
#include "src/atm/platforms.hpp"

int main() {
  using namespace atm;
  // A denser sweep than the comparison figures: curve fitting wants
  // points, and a single CUDA platform is cheap to sweep.
  const std::vector<std::size_t> sweep =
      bench::maybe_smoke({250,  500,  750,  1000, 1500,
                                          2000, 3000, 4000, 6000, 8000});
  auto backend = tasks::make_gtx_880m();
  const bench::Series series =
      bench::measure_series(*backend, bench::Task::kTask1, sweep);
  bench::print_figure_table("Figure 8: Task 1 on GTX 880M (fit input)",
                            {series});
  bench::print_fit_detail(series);
  std::cout << "\nPASS criteria: linear R^2 > 0.9 (close to 1); the curve "
               "grows only slightly\nfaster than linear (small quadratic "
               "coefficient).\n";
  return 0;
}
