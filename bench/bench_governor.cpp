// Overload governance under induced overload (docs/ROBUSTNESS.md).
//
// The paper's Xeon "regularly missed a large number of deadlines"
// (Section 6.2) — and its executive just counts them. This bench induces
// that overload for real: the 16-worker MIMD backend runs dense-en-route
// traffic under the wall-clock executive with a period far below its
// brute-force Task 1 time, plus seeded stolen-time faults (other host
// load preempting the executive). It then runs the exact same workload
// twice — ungoverned, and governed by the degradation ladder — and
// compares missed+skipped deadline counts.
//
// PASS criteria (enforced, non-smoke): the governed run records at most
// half the ungoverned missed+skipped count, the governor actually walked
// the ladder, and every level transition is visible as a kGovernor trace
// event (one event per transition, each naming its rung).
#include <cstdint>
#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "src/atm/pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/table.hpp"
#include "src/obs/trace.hpp"

namespace {

using namespace atm;

struct OverloadSetup {
  std::size_t aircraft;
  int major_cycles;
  double real_period_ms;
  double stolen_time_ms;
};

tasks::PipelineConfig overload_config(const tasks::Scenario& scenario,
                                      const OverloadSetup& setup) {
  tasks::PipelineConfig cfg = tasks::make_pipeline_config(
      scenario, setup.major_cycles, /*seed=*/42);
  cfg.aircraft = setup.aircraft;
  cfg.clock_mode = tasks::ClockMode::kWallclock;
  cfg.real_period_ms = setup.real_period_ms;
  cfg.faults.enabled = true;
  cfg.faults.stolen_time_probability = 0.3;
  cfg.faults.stolen_time_ms = setup.stolen_time_ms;
  return cfg;
}

std::uint64_t run_and_report(const tasks::PipelineConfig& cfg,
                             const char* label, core::TextTable& table,
                             obs::RecordingSink* sink) {
  auto backend = tasks::make_xeon();
  tasks::PipelineConfig run_cfg = cfg;
  run_cfg.trace = sink;
  const tasks::PipelineResult result = tasks::run_pipeline(*backend, run_cfg);
  table.begin_row();
  table.add_cell(label);
  table.add_cell(static_cast<long long>(result.deadlines().total_met()));
  table.add_cell(static_cast<long long>(result.deadlines().total_missed()));
  table.add_cell(static_cast<long long>(result.deadlines().total_skipped()));
  table.add_cell(static_cast<long long>(result.governor_degrades));
  table.add_cell(static_cast<long long>(result.governor_recovers));
  table.add_cell(static_cast<long long>(result.final_governor_level));
  return result.missed_or_skipped();
}

}  // namespace

int main(int argc, char** argv) {
  const tasks::Scenario scenario =
      bench::scenario_from_args(argc, argv, tasks::dense_en_route());
  // Smoke mode shrinks the fleet and the period so CI only proves the
  // harness runs end to end; the full setup is the acceptance load.
  // Full-mode numbers are tuned to this workload's measured host costs
  // (dense-en-route @ 3000 on the MIMD host path: Task 1 ~10 ms brute vs
  // ~0.3 ms degraded; Tasks 2+3 ~226 ms brute vs ~80 ms fully degraded).
  // A 90 ms period with 86 ms steals fits the *degraded* work and only
  // it: the ungoverned executive misses every stolen period and every
  // end-of-cycle conflict pass, the governed one absorbs both.
  const OverloadSetup setup =
      bench::smoke_mode()
          ? OverloadSetup{600, 1, /*real_period_ms=*/4.0,
                          /*stolen_time_ms=*/3.8}
          : OverloadSetup{3000, 4, /*real_period_ms=*/90.0,
                          /*stolen_time_ms=*/86.0};

  const tasks::PipelineConfig base = overload_config(scenario, setup);

  std::cout << "\n== Overload governance: " << scenario.name << " @ "
            << setup.aircraft << " aircraft, 16-worker Xeon, "
            << setup.real_period_ms << " ms wall-clock periods, stolen-time "
            << "faults (" << setup.stolen_time_ms << " ms @ p=0.3) ==\n";

  core::TextTable table({"executive", "met", "missed", "skipped", "degrades",
                         "recovers", "final level"});
  const std::uint64_t ungoverned_bad =
      run_and_report(base, "ungoverned", table, nullptr);

  tasks::PipelineConfig governed_cfg = base;
  governed_cfg.governor.enabled = true;
  obs::RecordingSink sink;
  const std::uint64_t governed_bad =
      run_and_report(governed_cfg, "governed", table, &sink);
  std::cout << table;

  // Every transition the governor took, in order — the trace is the
  // audit trail of what the executive gave up and when it took it back.
  core::TextTable transitions(
      {"cycle", "period", "action", "from", "to", "rung", "utilization"});
  std::uint64_t governor_events = 0;
  for (const obs::TraceEvent& ev : sink.events()) {
    if (ev.kind != obs::EventKind::kGovernor) continue;
    ++governor_events;
    transitions.begin_row();
    transitions.add_cell(static_cast<long long>(ev.cycle));
    transitions.add_cell(static_cast<long long>(ev.period));
    transitions.add_cell(ev.outcome);
    transitions.add_cell(static_cast<long long>(ev.governor_from_level));
    transitions.add_cell(static_cast<long long>(ev.governor_level));
    transitions.add_cell(ev.name);
    transitions.add_cell(ev.utilization, 3);
  }
  std::cout << "\n== Governor transitions ==\n" << transitions;

  const double reduction =
      ungoverned_bad == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(governed_bad) /
                               static_cast<double>(ungoverned_bad));
  std::cout << "\nmissed+skipped: ungoverned " << ungoverned_bad
            << ", governed " << governed_bad << " (" << reduction
            << "% reduction)\n";

  if (bench::smoke_mode()) {
    std::cout << "smoke mode: overload gate not enforced\n";
    return 0;
  }
  bool ok = true;
  if (ungoverned_bad == 0) {
    std::cout << "FAIL: the overload setup no longer overloads this host\n";
    ok = false;
  }
  if (governed_bad * 2 > ungoverned_bad) {
    std::cout << "FAIL: governed run must record at most half the "
                 "ungoverned missed+skipped count\n";
    ok = false;
  }
  if (governor_events == 0) {
    std::cout << "FAIL: no kGovernor trace events were emitted\n";
    ok = false;
  }
  if (ok) std::cout << "PASS: governed executive held the overload\n";
  return ok ? 0 : 1;
}
