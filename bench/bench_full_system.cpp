// Extension bench (paper Section 7.2): the *complete* ATM system — Task 1,
// display update every period, Tasks 2+3, terrain avoidance, and the
// 4-second advisory scan — under the real-time executive on every
// platform. The paper's future-work question: "determine if it is still
// viable and will not miss deadlines or change the curves of the execution
// graph significantly".
#include <iostream>

#include "bench/common.hpp"
#include "src/atm/extended/full_pipeline.hpp"
#include "src/atm/platforms.hpp"
#include "src/core/table.hpp"

int main() {
  using namespace atm;
  const std::vector<std::size_t> sweep =
      bench::maybe_smoke({1000, 2000, 4000, 8000});

  core::TextTable table({"platform", "aircraft", "missed", "skipped",
                         "task1 mean [ms]", "display mean [ms]",
                         "task23 [ms]", "terrain [ms]", "advisory [ms]",
                         "verdict"});
  for (const std::size_t n : sweep) {
    auto platforms = tasks::make_platforms(tasks::PlatformSet::kAllPlatforms);
    platforms.push_back(tasks::make_xeon_phi());
    for (auto& backend : platforms) {
      tasks::extended::FullSystemConfig cfg;
      cfg.aircraft = n;
      cfg.major_cycles = 1;
      cfg.seed = 42 + n;
      const auto result = tasks::extended::run_full_system(*backend, cfg);
      table.begin_row();
      table.add_cell(backend->name());
      table.add_cell(n);
      table.add_cell(static_cast<long long>(result.monitor.total_missed()));
      table.add_cell(static_cast<long long>(result.monitor.total_skipped()));
      table.add_cell(result.monitor.task("task1").duration_ms.mean(), 3);
      table.add_cell(result.monitor.task("display").duration_ms.mean(), 3);
      table.add_cell(result.monitor.task("task23").duration_ms.mean(), 3);
      table.add_cell(result.monitor.task("terrain").duration_ms.mean(), 3);
      table.add_cell(result.monitor.task("advisory").duration_ms.mean(), 3);
      const auto bad =
          result.monitor.total_missed() + result.monitor.total_skipped();
      table.add_cell(bad == 0 ? std::string("viable")
                              : std::to_string(bad) + " missed/skipped");
    }
  }
  std::cout << "\n== Complete ATM system (Task 1 + display each period; "
               "Tasks 2+3 + terrain each cycle;\n   advisory every 4 s) — "
               "one major cycle ==\n"
            << table;
  std::cout << "\nPASS criteria: the deterministic platforms stay 'viable' "
               "(the added tasks are\ncheap next to Task 1 and Tasks 2+3); "
               "the Xeon's misses only worsen.\n";
  return 0;
}
