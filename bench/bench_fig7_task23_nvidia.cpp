// Figure 7 reproduction: Tasks 2+3 timings on the three NVIDIA cards.
//
// Expected shape: Titan X < 880M < 9800 GT; curves near-linear (quadratic
// with a very small coefficient on the narrow 9800 GT — see Figure 9).
#include <iostream>

#include "bench/common.hpp"
#include "src/atm/platforms.hpp"

int main() {
  using namespace atm;
  const auto sweep = bench::default_sweep();
  std::vector<bench::Series> series;
  for (auto& backend :
       tasks::make_platforms(tasks::PlatformSet::kNvidiaOnly)) {
    series.push_back(
        bench::measure_series(*backend, bench::Task::kTask23, sweep));
  }
  bench::print_figure_table("Figure 7: Tasks 2+3, NVIDIA cards", series);
  bench::print_curve_fits(series);
  std::cout << "\nPASS criteria: Titan X < 880M < 9800 GT at every n.\n";
  return 0;
}
