// Figure 9 reproduction: curve fit of Tasks 2+3 timings on the GeForce
// 9800 GT.
//
// The paper: "The curve for the GeForce 9800 GT's performance with
// collision detection and resolution shows a curve that seems to fit
// quadratic better than linear based on the 'goodness of fit' numbers.
// However, the quadratic coefficient is very small compared to the linear
// coefficient, which means that this curve is closer to linear than
// quadratic."
//
// Expected: quadratic model preferred by adjusted R-square, quadratic
// coefficient orders of magnitude below the linear coefficient.
#include <iostream>

#include "bench/common.hpp"
#include "src/atm/platforms.hpp"

int main() {
  using namespace atm;
  const std::vector<std::size_t> sweep =
      bench::maybe_smoke({250,  500,  750,  1000, 1500,
                                          2000, 3000, 4000, 6000, 8000});
  auto backend = tasks::make_geforce_9800_gt();
  const bench::Series series =
      bench::measure_series(*backend, bench::Task::kTask23, sweep);
  bench::print_figure_table(
      "Figure 9: Tasks 2+3 on GeForce 9800 GT (fit input)", {series});
  bench::print_fit_detail(series);
  std::cout << "\nPASS criteria: quadratic preferred by adjusted R^2, with "
               "quad/linear coefficient ratio << 1.\n";
  return 0;
}
