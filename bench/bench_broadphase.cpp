// Broadphase ablation: brute-force vs grid candidate enumeration on the
// host hot paths.
//
// The paper's platforms all brute-force the O(n) box test per radar
// (Task 1) and the O(n^2) pair scan (Tasks 2+3) because their hardware
// makes the full sweep nearly free. The host backends don't get that
// luxury, so src/core/spatial/ gives them a uniform grid (Task 1) and a
// velocity-swept index (Tasks 2+3) that enumerate a provable superset of
// the exact matches. This bench measures what the pruning buys in host
// wall time on the dense-en-route scenario — the workload the grid is
// for — and double-checks that both modes still produce identical task
// outcomes while doing it.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/mimd_backend.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/table.hpp"
#include "src/rt/clock.hpp"

namespace {

using atm::core::spatial::BroadphaseMode;

constexpr int kTask1Periods = 8;
constexpr int kTask23Reps = 3;

struct TaskRun {
  double wall_ms = 0.0;  ///< Best-of-reps host wall time for the task.
  atm::tasks::Task1Stats task1;
  atm::tasks::Task23Stats task23;
};

atm::tasks::Task1Stats outcome_task1(atm::tasks::Task1Stats s) {
  s.box_tests = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

atm::tasks::Task23Stats outcome_task23(atm::tasks::Task23Stats s) {
  s.pair_tests = 0;
  s.pair_candidates = 0;
  s.rescans = 0;
  s.kernel = -1;
  s.lanes_masked = 0;
  return s;
}

/// Run kTask1Periods consecutive Task 1 periods from a fresh airfield and
/// return the summed host wall time. Radar noise is seeded identically
/// for every call, so brute and grid see bit-identical frames.
template <typename BackendT>
TaskRun run_task1(const atm::tasks::Scenario& scenario, std::size_t n,
                  BroadphaseMode mode) {
  using namespace atm;
  tasks::Scenario s = scenario;
  s.policy.broadphase = mode;
  const tasks::PipelineConfig cfg = make_pipeline_config(s);
  BackendT backend;
  backend.load(airfield::make_airfield(n, cfg.seed, cfg.setup));
  core::Rng rng(cfg.seed + 1);
  TaskRun run;
  for (int p = 0; p < kTask1Periods; ++p) {
    airfield::RadarFrame frame =
        backend.generate_radar(rng, cfg.radar, nullptr);
    const rt::Stopwatch sw;
    const tasks::Task1Result result = backend.run_task1(frame, cfg.task1);
    run.wall_ms += sw.elapsed_ms();
    run.task1 = result.stats;
  }
  return run;
}

/// Run Tasks 2+3 once per rep from a fresh airfield; keep the best rep.
template <typename BackendT>
TaskRun run_task23(const atm::tasks::Scenario& scenario, std::size_t n,
                   BroadphaseMode mode) {
  using namespace atm;
  tasks::Scenario s = scenario;
  s.policy.broadphase = mode;
  const tasks::PipelineConfig cfg = make_pipeline_config(s);
  TaskRun run;
  for (int rep = 0; rep < kTask23Reps; ++rep) {
    BackendT backend;
    backend.load(airfield::make_airfield(n, cfg.seed, cfg.setup));
    const rt::Stopwatch sw;
    const tasks::Task23Result result = backend.run_task23(cfg.task23);
    const double ms = sw.elapsed_ms();
    if (rep == 0 || ms < run.wall_ms) run.wall_ms = ms;
    run.task23 = result.stats;
  }
  return run;
}

void add_speedup_row(atm::core::TextTable& table, const std::string& task,
                     const std::string& backend, std::size_t n,
                     const TaskRun& brute, const TaskRun& grid,
                     double candidates, double exact_tests) {
  table.begin_row();
  table.add_cell(task);
  table.add_cell(backend);
  table.add_cell(n);
  table.add_cell(brute.wall_ms, 3);
  table.add_cell(grid.wall_ms, 3);
  table.add_cell(grid.wall_ms > 0.0 ? brute.wall_ms / grid.wall_ms : 0.0, 2);
  table.add_cell(candidates, 0);
  table.add_cell(exact_tests, 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atm;
  const tasks::Scenario scenario =
      bench::scenario_from_args(argc, argv, tasks::dense_en_route());
  const std::vector<std::size_t> sweep{1000, 3000, 6000};

  bench::JsonReport report("broadphase",
                           bench::json_path_from_args(argc, argv));
  report.set_scenario(scenario.name);
  report.add_param("task1_periods", static_cast<long long>(kTask1Periods));
  report.add_param("task23_reps", static_cast<long long>(kTask23Reps));
  const auto add_json = [&](const char* task, const char* backend,
                            std::size_t n, const char* mode,
                            const TaskRun& run, const std::string& digest) {
    report.begin_result();
    report.add_field("task", std::string(task));
    report.add_field("backend", std::string(backend));
    report.add_field("aircraft", static_cast<long long>(n));
    report.add_field("broadphase", std::string(mode));
    report.add_field("wall_ms", run.wall_ms);
    report.add_field("digest", digest);
  };

  core::TextTable table({"task", "backend", "aircraft", "brute [ms]",
                         "grid [ms]", "speedup", "grid candidates",
                         "grid exact tests"});
  bool outcomes_match = true;
  double speedup_t1_3000 = 0.0;
  double speedup_t23_3000 = 0.0;

  for (const std::size_t n : sweep) {
    // Task 1: correlation boxes through the per-pass uniform grid.
    const TaskRun t1_brute =
        run_task1<tasks::ReferenceBackend>(scenario, n,
                                           BroadphaseMode::kBruteForce);
    const TaskRun t1_grid =
        run_task1<tasks::ReferenceBackend>(scenario, n,
                                           BroadphaseMode::kGrid);
    outcomes_match &=
        outcome_task1(t1_brute.task1) == outcome_task1(t1_grid.task1);
    add_json("task1", "reference", n, "brute", t1_brute,
             bench::outcome_digest(t1_brute.task1));
    add_json("task1", "reference", n, "grid", t1_grid,
             bench::outcome_digest(t1_grid.task1));
    add_speedup_row(table, "task1", "reference", n, t1_brute, t1_grid,
                    static_cast<double>(t1_grid.task1.box_tests),
                    static_cast<double>(t1_grid.task1.box_tests));

    // Tasks 2+3: pair scans through the velocity-swept index.
    const TaskRun t23_brute =
        run_task23<tasks::ReferenceBackend>(scenario, n,
                                            BroadphaseMode::kBruteForce);
    const TaskRun t23_grid =
        run_task23<tasks::ReferenceBackend>(scenario, n,
                                            BroadphaseMode::kGrid);
    outcomes_match &=
        outcome_task23(t23_brute.task23) == outcome_task23(t23_grid.task23);
    add_json("task23", "reference", n, "brute", t23_brute,
             bench::outcome_digest(t23_brute.task23));
    add_json("task23", "reference", n, "grid", t23_grid,
             bench::outcome_digest(t23_grid.task23));
    add_speedup_row(table, "task23", "reference", n, t23_brute, t23_grid,
                    static_cast<double>(t23_grid.task23.pair_candidates),
                    static_cast<double>(t23_grid.task23.pair_tests));

    if (n == 3000) {
      speedup_t1_3000 = t1_grid.wall_ms > 0.0
                            ? t1_brute.wall_ms / t1_grid.wall_ms
                            : 0.0;
      speedup_t23_3000 = t23_grid.wall_ms > 0.0
                             ? t23_brute.wall_ms / t23_grid.wall_ms
                             : 0.0;
    }

    // The MIMD pool shares the same broadphase behind its workers.
    const TaskRun m23_brute =
        run_task23<tasks::MimdBackend>(scenario, n,
                                       BroadphaseMode::kBruteForce);
    const TaskRun m23_grid =
        run_task23<tasks::MimdBackend>(scenario, n, BroadphaseMode::kGrid);
    outcomes_match &=
        outcome_task23(m23_brute.task23) == outcome_task23(m23_grid.task23);
    add_json("task23", "mimd-xeon", n, "brute", m23_brute,
             bench::outcome_digest(m23_brute.task23));
    add_json("task23", "mimd-xeon", n, "grid", m23_grid,
             bench::outcome_digest(m23_grid.task23));
    add_speedup_row(table, "task23", "mimd-xeon", n, m23_brute, m23_grid,
                    static_cast<double>(m23_grid.task23.pair_candidates),
                    static_cast<double>(m23_grid.task23.pair_tests));
  }

  std::printf("== Broadphase ablation: %s ==\n", scenario.name.c_str());
  std::printf("%s\n", scenario.description.c_str());
  std::printf("Task 1 wall time sums %d consecutive periods; Tasks 2+3 "
              "take the best of %d runs.\n\n",
              kTask1Periods, kTask23Reps);
  std::cout << table;

  std::printf("\ntask outcomes identical across modes: %s\n",
              outcomes_match ? "yes" : "NO — BROADPHASE BUG");
  std::printf("dense-en-route @ 3000 aircraft: task1 grid speedup %.2fx, "
              "task23 grid speedup %.2fx\n",
              speedup_t1_3000, speedup_t23_3000);
  const bool json_ok = report.write();
  if (!outcomes_match || !json_ok) return 1;
  std::cout << "\nObservation: the grid prunes candidate work roughly "
               "linearly in density for Task 1\nand the swept index turns "
               "the all-pairs scan into a near-linear pass over "
               "altitude\nslabs for Tasks 2+3 — host-side wins the paper's "
               "SIMD/associative platforms get\nfor free in hardware.\n";
  return (speedup_t1_3000 > 1.0 && speedup_t23_3000 > 1.0) ? 0 : 1;
}
