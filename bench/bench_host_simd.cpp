// Host-SIMD kernel ablation: scalar vs AVX2 batch kernels on the host
// hot paths (src/core/kern/, docs/PERF.md).
//
// The paper's SIMD platforms win by doing the per-record flight math in
// lockstep lanes. The host reproduction gets the same lever from the
// batch-kernel layer: Task 1's box tests and Tasks 2+3's band
// intersections run 4-wide under AVX2, bit-identical to the portable
// scalar kernels by contract. This bench measures both levels of that
// claim on the dense-en-route scenario:
//
//   * end to end — full Task 1 / Tasks 2+3 runs on the reference backend
//     under every {broadphase} x {scalar, avx2} combination, checking
//     that the outcome digests never move while the kernel changes, and
//   * the band kernel alone — a tight band_intersect_batch microbench at
//     3000 aircraft, where the AVX2 kernel must clear 2x over scalar
//     (non-smoke; the full-path wins are smaller because gathers and
//     caller decision logic are kernel-independent).
//
// On hosts without AVX2 (or ATM_HOST_SIMD=OFF builds) the avx2 request
// resolves to scalar by contract; the bench reports that and skips the
// speedup gate instead of failing.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/reference_backend.hpp"
#include "src/atm/scenarios.hpp"
#include "src/core/kern/kernels.hpp"
#include "src/core/kern/soa_snapshot.hpp"
#include "src/core/table.hpp"
#include "src/rt/clock.hpp"

namespace {

using atm::core::kern::Kernel;
using atm::core::kern::KernelMode;
using atm::core::spatial::BroadphaseMode;

struct TaskRun {
  double wall_ms = 0.0;     ///< Host wall time (sum/best, see runners).
  double modeled_ms = 0.0;  ///< Modeled platform time.
  atm::tasks::Task1Stats task1;
  atm::tasks::Task23Stats task23;
};

/// Sum `periods` consecutive Task 1 runs from a fresh airfield. Radar
/// noise is seeded identically per call, so every kernel sees
/// bit-identical frames.
TaskRun run_task1(const atm::tasks::Scenario& scenario, std::size_t n,
                  BroadphaseMode phase, KernelMode kernel, int periods) {
  using namespace atm;
  tasks::Scenario s = scenario;
  s.policy.broadphase = phase;
  s.policy.kernel = kernel;
  const tasks::PipelineConfig cfg = make_pipeline_config(s);
  tasks::ReferenceBackend backend;
  backend.load(airfield::make_airfield(n, cfg.seed, cfg.setup));
  core::Rng rng(cfg.seed + 1);
  TaskRun run;
  for (int p = 0; p < periods; ++p) {
    airfield::RadarFrame frame =
        backend.generate_radar(rng, cfg.radar, nullptr);
    const rt::Stopwatch sw;
    const tasks::Task1Result result = backend.run_task1(frame, cfg.task1);
    run.wall_ms += sw.elapsed_ms();
    run.modeled_ms += result.modeled_ms;
    run.task1 = result.stats;
  }
  return run;
}

/// Run Tasks 2+3 once per rep from a fresh airfield; keep the best rep.
TaskRun run_task23(const atm::tasks::Scenario& scenario, std::size_t n,
                   BroadphaseMode phase, KernelMode kernel, int reps) {
  using namespace atm;
  tasks::Scenario s = scenario;
  s.policy.broadphase = phase;
  s.policy.kernel = kernel;
  const tasks::PipelineConfig cfg = make_pipeline_config(s);
  TaskRun run;
  for (int rep = 0; rep < reps; ++rep) {
    tasks::ReferenceBackend backend;
    backend.load(airfield::make_airfield(n, cfg.seed, cfg.setup));
    const rt::Stopwatch sw;
    const tasks::Task23Result result = backend.run_task23(cfg.task23);
    const double ms = sw.elapsed_ms();
    if (rep == 0 || ms < run.wall_ms) run.wall_ms = ms;
    if (rep == 0 || result.modeled_ms < run.modeled_ms) {
      run.modeled_ms = result.modeled_ms;
    }
    run.task23 = result.stats;
  }
  return run;
}

struct MicroRun {
  double wall_ms = 0.0;        ///< Best-of-reps full-fleet scan time.
  std::uint64_t conflicts = 0; ///< Conflict-lane count (digest input).
  std::uint64_t checksum = 0;  ///< XOR of conflict tmin bit patterns.
  std::uint64_t lanes_masked = 0;
};

/// The band kernel alone: scan every aircraft against the whole fleet
/// through band_intersect_batch, no broadphase, no decision logic beyond
/// a self-skip — the purest view of the lane-level speedup.
MicroRun band_micro(const atm::airfield::FlightDb& db, Kernel kernel,
                    int reps) {
  using namespace atm;
  const tasks::Task23Params defaults;
  const core::kern::BandParams params{defaults.band_nm,
                                      defaults.horizon_periods,
                                      defaults.altitude_gate_feet};
  core::kern::SoaSnapshot snap;
  snap.gather(db);
  const core::kern::SoaView view = snap.view();
  const std::size_t n = view.n;
  core::kern::AlignedVector<double> tmin(n);
  std::vector<std::uint8_t> flags(n);
  MicroRun best;
  for (int rep = 0; rep < reps; ++rep) {
    MicroRun run;
    const rt::Stopwatch sw;
    for (std::size_t i = 0; i < n; ++i) {
      core::kern::band_intersect_batch(
          kernel, view, nullptr, n, view.x[i], view.y[i], view.alt[i],
          view.dx[i], view.dy[i], params, tmin.data(), flags.data(),
          &run.lanes_masked);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || (flags[j] & core::kern::kBandConflict) == 0) continue;
        ++run.conflicts;
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof tmin[j]);
        __builtin_memcpy(&bits, &tmin[j], sizeof bits);
        run.checksum ^= bits;
      }
    }
    run.wall_ms = sw.elapsed_ms();
    // Each rep masks the same lanes, so keeping the fastest rep whole
    // (lanes included) is representative.
    if (rep == 0 || run.wall_ms < best.wall_ms) best = run;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atm;
  const tasks::Scenario scenario =
      bench::scenario_from_args(argc, argv, tasks::dense_en_route());
  const bool smoke = bench::smoke_mode();
  const bool avx2 = core::kern::avx2_available();
  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{600}
            : std::vector<std::size_t>{1000, 3000, 6000};
  const int task1_periods = smoke ? 2 : 8;
  const int task23_reps = smoke ? 1 : 3;
  const std::size_t micro_n = smoke ? 600 : 3000;
  const int micro_reps = smoke ? 1 : 5;

  bench::JsonReport report("host_simd",
                           bench::json_path_from_args(argc, argv));
  report.set_scenario(scenario.name);
  report.add_param("smoke", static_cast<long long>(smoke));
  report.add_param("avx2_available", static_cast<long long>(avx2));
  report.add_param("task1_periods", static_cast<long long>(task1_periods));
  report.add_param("task23_reps", static_cast<long long>(task23_reps));
  report.add_param("micro_aircraft", static_cast<long long>(micro_n));
  report.add_param("micro_reps", static_cast<long long>(micro_reps));
  report.add_param("micro_speedup_gate", 2.0);

  core::TextTable table({"task", "mode", "aircraft", "scalar [ms]",
                         "avx2 [ms]", "speedup", "avx2 lanes masked",
                         "digests"});
  bool outcomes_match = true;

  const auto add_json = [&](const char* task, const char* mode,
                            std::size_t n, const char* kernel,
                            const TaskRun& run, const std::string& digest,
                            std::uint64_t lanes) {
    report.begin_result();
    report.add_field("task", std::string(task));
    report.add_field("broadphase", std::string(mode));
    report.add_field("aircraft", static_cast<long long>(n));
    report.add_field("kernel", std::string(kernel));
    report.add_field("wall_ms", run.wall_ms);
    report.add_field("modeled_ms", run.modeled_ms);
    report.add_field("digest", digest);
    report.add_field("lanes_masked", static_cast<long long>(lanes));
  };

  for (const std::size_t n : sweep) {
    for (const BroadphaseMode phase :
         {BroadphaseMode::kBruteForce, BroadphaseMode::kGrid}) {
      const char* mode = phase == BroadphaseMode::kGrid ? "grid" : "brute";

      const TaskRun t1_s =
          run_task1(scenario, n, phase, KernelMode::kScalar, task1_periods);
      const TaskRun t1_v =
          run_task1(scenario, n, phase, KernelMode::kAvx2, task1_periods);
      const std::string d1_s = bench::outcome_digest(t1_s.task1);
      const std::string d1_v = bench::outcome_digest(t1_v.task1);
      const bool m1 = d1_s == d1_v;
      outcomes_match &= m1;
      table.begin_row();
      table.add_cell("task1");
      table.add_cell(mode);
      table.add_cell(n);
      table.add_cell(t1_s.wall_ms, 3);
      table.add_cell(t1_v.wall_ms, 3);
      table.add_cell(t1_v.wall_ms > 0.0 ? t1_s.wall_ms / t1_v.wall_ms : 0.0,
                     2);
      table.add_cell(t1_v.task1.lanes_masked);
      table.add_cell(m1 ? "match" : "DIVERGED");
      add_json("task1", mode, n, "scalar", t1_s, d1_s,
               t1_s.task1.lanes_masked);
      add_json("task1", mode, n, "avx2", t1_v, d1_v,
               t1_v.task1.lanes_masked);

      const TaskRun t23_s =
          run_task23(scenario, n, phase, KernelMode::kScalar, task23_reps);
      const TaskRun t23_v =
          run_task23(scenario, n, phase, KernelMode::kAvx2, task23_reps);
      const std::string d23_s = bench::outcome_digest(t23_s.task23);
      const std::string d23_v = bench::outcome_digest(t23_v.task23);
      const bool m23 = d23_s == d23_v;
      outcomes_match &= m23;
      table.begin_row();
      table.add_cell("task23");
      table.add_cell(mode);
      table.add_cell(n);
      table.add_cell(t23_s.wall_ms, 3);
      table.add_cell(t23_v.wall_ms, 3);
      table.add_cell(
          t23_v.wall_ms > 0.0 ? t23_s.wall_ms / t23_v.wall_ms : 0.0, 2);
      table.add_cell(t23_v.task23.lanes_masked);
      table.add_cell(m23 ? "match" : "DIVERGED");
      add_json("task23", mode, n, "scalar", t23_s, d23_s,
               t23_s.task23.lanes_masked);
      add_json("task23", mode, n, "avx2", t23_v, d23_v,
               t23_v.task23.lanes_masked);
    }
  }

  // The band kernel alone, both implementations over the same snapshot.
  const tasks::PipelineConfig micro_cfg = make_pipeline_config(scenario);
  const airfield::FlightDb micro_db =
      airfield::make_airfield(micro_n, micro_cfg.seed, micro_cfg.setup);
  const MicroRun micro_s = band_micro(micro_db, Kernel::kScalar, micro_reps);
  const MicroRun micro_v =
      band_micro(micro_db, core::kern::resolve(KernelMode::kAvx2),
                 micro_reps);
  const bool micro_match = micro_s.conflicts == micro_v.conflicts &&
                           micro_s.checksum == micro_v.checksum;
  outcomes_match &= micro_match;
  const double micro_speedup =
      micro_v.wall_ms > 0.0 ? micro_s.wall_ms / micro_v.wall_ms : 0.0;
  report.begin_result();
  report.add_field("task", std::string("band_kernel_micro"));
  report.add_field("aircraft", static_cast<long long>(micro_n));
  report.add_field("kernel", std::string("scalar"));
  report.add_field("wall_ms", micro_s.wall_ms);
  report.add_field("conflict_lanes",
                   static_cast<long long>(micro_s.conflicts));
  report.begin_result();
  report.add_field("task", std::string("band_kernel_micro"));
  report.add_field("aircraft", static_cast<long long>(micro_n));
  report.add_field("kernel",
                   std::string(avx2 ? "avx2" : "scalar (avx2 unavailable)"));
  report.add_field("wall_ms", micro_v.wall_ms);
  report.add_field("conflict_lanes",
                   static_cast<long long>(micro_v.conflicts));
  report.add_field("speedup", micro_speedup);

  std::printf("== Host-SIMD kernel ablation: %s ==\n", scenario.name.c_str());
  std::printf("%s\n", scenario.description.c_str());
  std::printf("avx2 kernels available: %s (requests resolve to %s)\n",
              avx2 ? "yes" : "no",
              to_string(core::kern::resolve(KernelMode::kAuto)).data());
  std::printf("Task 1 sums %d consecutive periods; Tasks 2+3 take the best "
              "of %d runs.\n\n",
              task1_periods, task23_reps);
  std::cout << table;

  std::printf("\nband_intersect_batch microbench @ %zu aircraft "
              "(best of %d full-fleet scans):\n",
              micro_n, micro_reps);
  std::printf("  scalar %.3f ms, avx2 %.3f ms, speedup %.2fx, "
              "lane digests %s\n",
              micro_s.wall_ms, micro_v.wall_ms, micro_speedup,
              micro_match ? "match" : "DIVERGED");

  std::printf("\ntask outcomes identical across kernels: %s\n",
              outcomes_match ? "yes" : "NO — KERNEL BUG");
  const bool json_ok = report.write();
  if (!outcomes_match || !json_ok) return 1;
  if (smoke) {
    std::printf("smoke mode: end-to-end check only, no speedup gate.\n");
    return 0;
  }
  if (!avx2) {
    std::printf("avx2 unavailable on this host/build: digest checks only, "
                "no speedup gate.\n");
    return 0;
  }
  std::cout << "\nObservation: the 4-wide AVX2 band kernel buys its win "
               "inside the lanes — the\nfull-path speedup is smaller "
               "because snapshot gathers and caller decision\nlogic are "
               "kernel-independent, which is exactly the Amdahl split the "
               "paper's\nSIMD-vs-host comparison turns on.\n";
  return micro_speedup >= 2.0 ? 0 : 1;
}
