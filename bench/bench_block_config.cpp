// T-S reproduction: the paper's block/thread configuration (Section 6.1).
//
// "If there are 96 aircrafts, then the setup used here is 1 block and 96
// threads in that block. For more aircraft, the limit on threads per block
// remains 96 but the blocks increase." This bench sweeps threads-per-block
// on the narrowest and widest cards and shows where the paper's choice of
// 96 lands; it also registers google-benchmark timers for the simulation
// host cost of a kernel launch, since that is what this reproduction
// actually executes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/core/table.hpp"

namespace {

using namespace atm;

constexpr std::size_t kAircraft = 4000;

void occupancy_table() {
  core::TextTable table({"threads/block", "blocks",
                         "9800 GT t1 [ms]", "9800 GT t23 [ms]",
                         "Titan X t1 [ms]", "Titan X t23 [ms]"});
  const airfield::FlightDb field = airfield::make_airfield(kAircraft, 42);
  for (const int tpb : {32, 64, 96, 128, 192, 256, 512}) {
    tasks::CudaBackend old_card(simt::geforce_9800_gt(), tpb);
    tasks::CudaBackend new_card(simt::titan_x_pascal(), tpb);
    double t1[2], t23[2];
    int idx = 0;
    for (tasks::CudaBackend* card : {&old_card, &new_card}) {
      card->load(field);
      core::Rng rng(7);
      airfield::RadarFrame frame = card->generate_radar(rng, {}, nullptr);
      t1[idx] = card->run_task1(frame, {}).modeled_ms;
      t23[idx] = card->run_task23({}).modeled_ms;
      ++idx;
    }
    table.begin_row();
    table.add_cell(static_cast<long long>(tpb));
    table.add_cell(static_cast<long long>((kAircraft + tpb - 1) / tpb));
    table.add_cell(t1[0], 4);
    table.add_cell(t23[0], 4);
    table.add_cell(t1[1], 4);
    table.add_cell(t23[1], 4);
  }
  std::cout << "\n== Block configuration sweep (" << kAircraft
            << " aircraft) ==\n"
            << table;
  std::cout << "\nObservation: the paper's 96 threads/block is within a few "
               "percent of the best\nconfiguration on both the oldest and "
               "newest card, because the per-thread loops\ndominate and the "
               "engine (like the hardware) balances whole blocks across "
               "SMs.\n\n";
}

// Host-side cost of simulating one empty launch (engine overhead).
void BM_EngineLaunchOverhead(benchmark::State& state) {
  simt::Device dev(simt::titan_x_pascal());
  const auto cfg = simt::one_thread_per_item(
      static_cast<std::uint64_t>(state.range(0)), 96);
  for (auto _ : state) {
    auto stats = dev.launch(cfg, [](simt::ThreadCtx& ctx) { ctx.charge(1); });
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineLaunchOverhead)->Arg(96)->Arg(960)->Arg(9600);

// Host-side cost of one full simulated Task 1 at 96 threads/block.
void BM_SimulatedTask1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const airfield::FlightDb field = airfield::make_airfield(n, 42);
  tasks::CudaBackend card(simt::titan_x_pascal());
  card.load(field);
  core::Rng rng(7);
  for (auto _ : state) {
    airfield::RadarFrame frame = card.generate_radar(rng, {}, nullptr);
    auto result = card.run_task1(frame, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SimulatedTask1)->Arg(250)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  occupancy_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
