#include "bench/common.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include <memory>

#include "src/airfield/setup.hpp"
#include "src/core/table.hpp"
#include "src/obs/jsonl_sink.hpp"

namespace atm::bench {

tasks::Scenario scenario_from_args(int argc, char** argv,
                                   const tasks::Scenario& fallback) {
  std::string key;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenario" && i + 1 < argc) {
      key = argv[i + 1];
    } else if (arg.rfind("--scenario=", 0) == 0) {
      key = arg.substr(std::string("--scenario=").size());
    }
  }
  if (key.empty()) return fallback;
  tasks::Scenario chosen;
  if (!tasks::scenario_by_name(key, chosen)) {
    std::cerr << "unknown scenario '" << key << "'; available:";
    for (const std::string& name : tasks::scenario_names()) {
      std::cerr << ' ' << name;
    }
    std::cerr << '\n';
    std::exit(2);
  }
  return chosen;
}

obs::TraceSink* bench_trace_sink() {
  static const std::unique_ptr<obs::JsonlTraceSink> sink = [] {
    std::unique_ptr<obs::JsonlTraceSink> s;
    if (const char* path = std::getenv("ATM_BENCH_TRACE")) {
      if (*path != '\0') {
        s = std::make_unique<obs::JsonlTraceSink>(std::string(path));
        if (!s->ok()) {
          std::cerr << "warning: cannot open ATM_BENCH_TRACE file " << path
                    << "; tracing disabled\n";
          s.reset();
        }
      }
    }
    return s;
  }();
  return sink.get();
}

bool smoke_mode() {
  const char* v = std::getenv("ATM_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::vector<std::size_t> maybe_smoke(std::vector<std::size_t> sweep) {
  if (smoke_mode() && sweep.size() > 3) sweep.resize(3);
  return sweep;
}

std::vector<std::size_t> default_sweep() {
  // Starts at 500: below that, fixed launch overheads put the platforms
  // within noise of each other (the 192-PE ClearSpeed can even undercut
  // the CC 1.0 card), a regime the paper's figures do not cover.
  return maybe_smoke({500, 1000, 2000, 4000, 8000});
}

Series measure_series(tasks::Backend& backend, Task task,
                      const std::vector<std::size_t>& sweep,
                      int task1_periods, std::uint64_t seed) {
  Series series;
  series.platform = backend.name();
  // Route every figure sweep through the shared sink (no-op when the
  // ATM_BENCH_TRACE environment variable is unset).
  obs::TraceSink* trace = bench_trace_sink();
  backend.set_trace_sink(trace);
  for (const std::size_t n : sweep) {
    backend.load(airfield::make_airfield(n, seed + n));
    core::Rng radar_rng(seed ^ n);
    double ms = 0.0;
    if (task == Task::kTask1) {
      for (int p = 0; p < task1_periods; ++p) {
        backend.set_trace_context(-1, p);
        airfield::RadarFrame frame =
            backend.generate_radar(radar_rng, {}, nullptr);
        ms += backend.run_task1(frame, {}).modeled_ms;
      }
      ms /= task1_periods;
    } else {
      // Advance one period first so Tasks 2+3 see post-tracking state,
      // like the 16th period of a real major cycle.
      airfield::RadarFrame frame =
          backend.generate_radar(radar_rng, {}, nullptr);
      (void)backend.run_task1(frame, {});
      ms = backend.run_task23({}).modeled_ms;
    }
    series.n.push_back(static_cast<double>(n));
    series.ms.push_back(ms);
  }
  backend.set_trace_sink(nullptr);
  backend.set_trace_context(-1, -1);
  if (trace != nullptr) trace->flush();
  return series;
}

namespace {

/// Kebab-case slug of a figure title, for CSV file names.
std::string slugify(const std::string& title) {
  std::string out;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '-') {
      out += '-';
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace

void print_figure_table(const std::string& title,
                        const std::vector<Series>& series) {
  std::cout << "\n== " << title << " ==\n";
  if (series.empty()) return;
  std::vector<std::string> headers{"aircraft"};
  for (const Series& s : series) headers.push_back(s.platform + " [ms]");
  core::TextTable table(std::move(headers));
  for (std::size_t row = 0; row < series.front().n.size(); ++row) {
    table.begin_row();
    table.add_cell(static_cast<long long>(series.front().n[row]));
    for (const Series& s : series) table.add_cell(s.ms[row], 4);
  }
  std::cout << table;

  // Optional machine-readable copy for plotting: set ATM_BENCH_CSV_DIR.
  if (const char* dir = std::getenv("ATM_BENCH_CSV_DIR")) {
    const std::string path =
        std::string(dir) + "/" + slugify(title) + ".csv";
    if (table.write_csv(path)) {
      std::cout << "(csv written to " << path << ")\n";
    }
  }
}

void print_curve_fits(const std::vector<Series>& series) {
  core::TextTable table({"platform", "shape", "lin R^2", "quad R^2",
                         "quad/lin coeff"});
  for (const Series& s : series) {
    const core::CurveShapeReport report =
        core::analyze_curve_shape(s.n, s.ms);
    table.begin_row();
    table.add_cell(s.platform);
    table.add_cell(report.classification());
    table.add_cell(report.linear.gof.r2, 6);
    table.add_cell(report.quadratic.gof.r2, 6);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3e",
                  report.quad_to_linear_coeff_ratio);
    table.add_cell(std::string(buf));
  }
  std::cout << "\n-- curve shapes (MATLAB-style fits) --\n" << table;
}

void print_fit_detail(const Series& series) {
  const core::PolyFit lin = core::fit_linear(series.n, series.ms);
  const core::PolyFit quad = core::fit_quadratic(series.n, series.ms);
  std::cout << "\n-- goodness of fit: " << series.platform << " --\n";
  core::TextTable table({"model", "equation", "SSE", "R-square",
                         "adj R-square", "RMSE"});
  for (const auto* fit : {&lin, &quad}) {
    table.begin_row();
    table.add_cell(fit->degree() == 1 ? std::string("linear (poly1)")
                                      : std::string("quadratic (poly2)"));
    table.add_cell(fit->to_string());
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4e", fit->gof.sse);
    table.add_cell(std::string(buf));
    table.add_cell(fit->gof.r2, 6);
    table.add_cell(fit->gof.adj_r2, 6);
    std::snprintf(buf, sizeof buf, "%.4e", fit->gof.rmse);
    table.add_cell(std::string(buf));
  }
  std::cout << table;
  const core::CurveShapeReport report =
      core::analyze_curve_shape(series.n, series.ms);
  std::cout << "classification: " << report.classification() << "\n";
}

}  // namespace atm::bench
