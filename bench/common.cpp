#include "bench/common.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string_view>
#include <utility>

#include "src/airfield/setup.hpp"
#include "src/core/table.hpp"
#include "src/obs/jsonl_sink.hpp"

namespace atm::bench {

tasks::Scenario scenario_from_args(int argc, char** argv,
                                   const tasks::Scenario& fallback) {
  std::string key;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenario" && i + 1 < argc) {
      key = argv[i + 1];
    } else if (arg.rfind("--scenario=", 0) == 0) {
      key = arg.substr(std::string("--scenario=").size());
    }
  }
  if (key.empty()) return fallback;
  tasks::Scenario chosen;
  if (!tasks::scenario_by_name(key, chosen)) {
    std::cerr << "unknown scenario '" << key << "'; available:";
    for (const std::string& name : tasks::scenario_names()) {
      std::cerr << ' ' << name;
    }
    std::cerr << '\n';
    std::exit(2);
  }
  return chosen;
}

std::string json_path_from_args(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[i + 1];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(std::string("--json=").size());
    }
  }
  return path;
}

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_string(std::string_view s) {
  std::string out = "\"";
  append_json_escaped(out, s);
  out += '"';
  return out;
}

std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string outcome_digest(const tasks::Task1Stats& stats) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "task1|%llu|%llu|%llu|%llu|%llu|%llu|%d",
                static_cast<unsigned long long>(stats.radars),
                static_cast<unsigned long long>(stats.matched),
                static_cast<unsigned long long>(stats.discarded_radars),
                static_cast<unsigned long long>(stats.unmatched_radars),
                static_cast<unsigned long long>(stats.ambiguous_aircraft),
                static_cast<unsigned long long>(stats.updated_aircraft),
                stats.passes);
  return hex64(fnv1a(buf));
}

std::string outcome_digest(const tasks::Task23Stats& stats) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "task23|%llu|%llu|%llu|%llu|%llu",
                static_cast<unsigned long long>(stats.aircraft),
                static_cast<unsigned long long>(stats.conflicts),
                static_cast<unsigned long long>(stats.critical),
                static_cast<unsigned long long>(stats.resolved),
                static_cast<unsigned long long>(stats.unresolved));
  return hex64(fnv1a(buf));
}

void JsonReport::param_raw(const std::string& key, std::string encoded) {
  if (!enabled()) return;
  params_.emplace_back(key, std::move(encoded));
}

void JsonReport::field_raw(const std::string& key, std::string encoded) {
  if (!enabled() || results_.empty()) return;
  std::string& row = results_.back();
  if (!row.empty()) row += ',';
  row += json_string(key);
  row += ':';
  row += encoded;
}

void JsonReport::add_param(const std::string& key, const std::string& value) {
  param_raw(key, json_string(value));
}

void JsonReport::add_param(const std::string& key, long long value) {
  param_raw(key, std::to_string(value));
}

void JsonReport::add_param(const std::string& key, double value) {
  param_raw(key, json_double(value));
}

void JsonReport::begin_result() {
  if (enabled()) results_.emplace_back();
}

void JsonReport::add_field(const std::string& key, const std::string& value) {
  field_raw(key, json_string(value));
}

void JsonReport::add_field(const std::string& key, long long value) {
  field_raw(key, std::to_string(value));
}

void JsonReport::add_field(const std::string& key, double value) {
  field_raw(key, json_double(value));
}

bool JsonReport::write() const {
  if (!enabled()) return true;
  std::string doc = "{\"bench\":";
  doc += json_string(bench_);
  if (!scenario_.empty()) {
    doc += ",\"scenario\":";
    doc += json_string(scenario_);
  }
  doc += ",\"params\":{";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i != 0) doc += ',';
    doc += json_string(params_[i].first);
    doc += ':';
    doc += params_[i].second;
  }
  doc += "},\"results\":[";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    if (i != 0) doc += ',';
    doc += '{';
    doc += results_[i];
    doc += '}';
  }
  doc += "]}\n";
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "warning: cannot open --json file " << path_ << "\n";
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok) std::cerr << "warning: short write to --json file " << path_ << "\n";
  else std::cout << "(json report written to " << path_ << ")\n";
  return ok;
}

obs::TraceSink* bench_trace_sink() {
  static const std::unique_ptr<obs::JsonlTraceSink> sink = [] {
    std::unique_ptr<obs::JsonlTraceSink> s;
    if (const char* path = std::getenv("ATM_BENCH_TRACE")) {
      if (*path != '\0') {
        s = std::make_unique<obs::JsonlTraceSink>(std::string(path));
        if (!s->ok()) {
          std::cerr << "warning: cannot open ATM_BENCH_TRACE file " << path
                    << "; tracing disabled\n";
          s.reset();
        }
      }
    }
    return s;
  }();
  return sink.get();
}

bool smoke_mode() {
  const char* v = std::getenv("ATM_BENCH_SMOKE");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::vector<std::size_t> maybe_smoke(std::vector<std::size_t> sweep) {
  if (smoke_mode() && sweep.size() > 3) sweep.resize(3);
  return sweep;
}

std::vector<std::size_t> default_sweep() {
  // Starts at 500: below that, fixed launch overheads put the platforms
  // within noise of each other (the 192-PE ClearSpeed can even undercut
  // the CC 1.0 card), a regime the paper's figures do not cover.
  return maybe_smoke({500, 1000, 2000, 4000, 8000});
}

Series measure_series(tasks::Backend& backend, Task task,
                      const std::vector<std::size_t>& sweep,
                      int task1_periods, std::uint64_t seed) {
  Series series;
  series.platform = backend.name();
  // Route every figure sweep through the shared sink (no-op when the
  // ATM_BENCH_TRACE environment variable is unset).
  obs::TraceSink* trace = bench_trace_sink();
  backend.set_trace_sink(trace);
  for (const std::size_t n : sweep) {
    backend.load(airfield::make_airfield(n, seed + n));
    core::Rng radar_rng(seed ^ n);
    double ms = 0.0;
    if (task == Task::kTask1) {
      for (int p = 0; p < task1_periods; ++p) {
        backend.set_trace_context(-1, p);
        airfield::RadarFrame frame =
            backend.generate_radar(radar_rng, {}, nullptr);
        ms += backend.run_task1(frame, {}).modeled_ms;
      }
      ms /= task1_periods;
    } else {
      // Advance one period first so Tasks 2+3 see post-tracking state,
      // like the 16th period of a real major cycle.
      airfield::RadarFrame frame =
          backend.generate_radar(radar_rng, {}, nullptr);
      (void)backend.run_task1(frame, {});
      ms = backend.run_task23({}).modeled_ms;
    }
    series.n.push_back(static_cast<double>(n));
    series.ms.push_back(ms);
  }
  backend.set_trace_sink(nullptr);
  backend.set_trace_context(-1, -1);
  if (trace != nullptr) trace->flush();
  return series;
}

namespace {

/// Kebab-case slug of a figure title, for CSV file names.
std::string slugify(const std::string& title) {
  std::string out;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '-') {
      out += '-';
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace

void print_figure_table(const std::string& title,
                        const std::vector<Series>& series) {
  std::cout << "\n== " << title << " ==\n";
  if (series.empty()) return;
  std::vector<std::string> headers{"aircraft"};
  for (const Series& s : series) headers.push_back(s.platform + " [ms]");
  core::TextTable table(std::move(headers));
  for (std::size_t row = 0; row < series.front().n.size(); ++row) {
    table.begin_row();
    table.add_cell(static_cast<long long>(series.front().n[row]));
    for (const Series& s : series) table.add_cell(s.ms[row], 4);
  }
  std::cout << table;

  // Optional machine-readable copy for plotting: set ATM_BENCH_CSV_DIR.
  if (const char* dir = std::getenv("ATM_BENCH_CSV_DIR")) {
    const std::string path =
        std::string(dir) + "/" + slugify(title) + ".csv";
    if (table.write_csv(path)) {
      std::cout << "(csv written to " << path << ")\n";
    }
  }
}

void print_curve_fits(const std::vector<Series>& series) {
  core::TextTable table({"platform", "shape", "lin R^2", "quad R^2",
                         "quad/lin coeff"});
  for (const Series& s : series) {
    const core::CurveShapeReport report =
        core::analyze_curve_shape(s.n, s.ms);
    table.begin_row();
    table.add_cell(s.platform);
    table.add_cell(report.classification());
    table.add_cell(report.linear.gof.r2, 6);
    table.add_cell(report.quadratic.gof.r2, 6);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3e",
                  report.quad_to_linear_coeff_ratio);
    table.add_cell(std::string(buf));
  }
  std::cout << "\n-- curve shapes (MATLAB-style fits) --\n" << table;
}

void print_fit_detail(const Series& series) {
  const core::PolyFit lin = core::fit_linear(series.n, series.ms);
  const core::PolyFit quad = core::fit_quadratic(series.n, series.ms);
  std::cout << "\n-- goodness of fit: " << series.platform << " --\n";
  core::TextTable table({"model", "equation", "SSE", "R-square",
                         "adj R-square", "RMSE"});
  for (const auto* fit : {&lin, &quad}) {
    table.begin_row();
    table.add_cell(fit->degree() == 1 ? std::string("linear (poly1)")
                                      : std::string("quadratic (poly2)"));
    table.add_cell(fit->to_string());
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4e", fit->gof.sse);
    table.add_cell(std::string(buf));
    table.add_cell(fit->gof.r2, 6);
    table.add_cell(fit->gof.adj_r2, 6);
    std::snprintf(buf, sizeof buf, "%.4e", fit->gof.rmse);
    table.add_cell(std::string(buf));
  }
  std::cout << table;
  const core::CurveShapeReport report =
      core::analyze_curve_shape(series.n, series.ms);
  std::cout << "classification: " << report.classification() << "\n";
}

}  // namespace atm::bench
