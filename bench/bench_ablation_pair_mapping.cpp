// A-3 ablation: thread mapping for collision detection.
//
// The paper maps one thread to one aircraft ("Each thread handles one
// aircraft ... and uses a for-loop to iterate over the entire aircraft
// array"). The natural alternative is one thread per *pair* on a 2-D
// grid, folding each pair's result into the aircraft's soonest-conflict
// state with atomics. Results are identical (asserted in the test suite);
// this bench quantifies why the paper's mapping is the right call: the
// pair grid launches n^2 threads whose useful work is one 60-cycle test
// each, so fixed per-thread overheads and the two full passes (time, then
// deterministic partner tie-break) dominate, and every conflict costs
// global atomics.
#include <iostream>

#include "bench/common.hpp"
#include "src/airfield/setup.hpp"
#include "src/atm/cuda_backend.hpp"
#include "src/core/table.hpp"

int main() {
  using namespace atm;
  const std::vector<std::size_t> sweep =
      bench::maybe_smoke({500, 1000, 2000, 4000});

  for (const auto& spec : {simt::geforce_9800_gt(), simt::titan_x_pascal()}) {
    core::TextTable table({"aircraft", "row-mapped [ms]",
                           "pair-grid [ms]", "pair-grid / row"});
    for (const std::size_t n : sweep) {
      const airfield::FlightDb field = airfield::make_airfield(n, 42 + n);
      tasks::CudaBackend row(spec);
      tasks::CudaBackend grid(spec);
      row.load(field);
      grid.load(field);
      const double t_row = row.run_task23({}).modeled_ms;
      const double t_grid = grid.run_task23_pairgrid({}).modeled_ms;
      table.begin_row();
      table.add_cell(n);
      table.add_cell(t_row, 4);
      table.add_cell(t_grid, 4);
      table.add_cell(t_grid / t_row, 2);
    }
    std::cout << "\n== Detection thread mapping: " << spec.name << " ==\n"
              << table;
  }
  std::cout << "\nPASS criteria: the paper's row mapping wins across the "
               "sweep (the pair grid pays\nn^2 per-thread overheads, a "
               "second full pass for deterministic tie-breaking, and\n"
               "atomic folding).\n";
  return 0;
}
