#!/usr/bin/env python3
"""Domain linter for the ATM reproduction: repo invariants the compiler
cannot see.

Rules (each can be waived on a specific line by putting
``atm-lint: allow(<rule>)`` in a comment on that line or the line above,
followed by a reason):

  nvi-private-final     Backend NVI hooks (do_run_*, do_generate_radar,
                        on_terrain_attached) overridden outside
                        src/atm/backend.hpp must sit in a private section
                        and be sealed: declared `final` (or the class is).
                        Callers must go through the public run_* entry
                        points, which carry the timing + tracing side
                        channel; a public or re-overridable hook reopens
                        the bypass the NVI redesign closed.
  units-suffix          `double` function parameters in public headers
                        must say their unit in the name (_nm, _ms,
                        _periods, _feet, ...) or be a recognized
                        dimensionless/coordinate name. The paper's tasks
                        mix nm, feet, knots, periods, and three time
                        units; an unlabeled double is how nm/hour reaches
                        an nm/period slot without a conversion.
  no-nondeterminism     std::rand, srand, time(...), std::random_device
                        are forbidden in src/: all randomness goes
                        through core::Rng with an explicit seed so every
                        run (and every cross-backend equivalence test) is
                        reproducible.
  backend-registration  Every `class XxxBackend final : public Backend`
                        must be reachable from src/atm/platforms.cpp, the
                        single factory surface benches and the CLI use.
  nolint-reason         NOLINT comments must name the suppressed check
                        and give a reason: `NOLINT(<check>): <why>`.
  scenario-configs      examples/ must not default-construct
                        PipelineConfig / FullSystemConfig and hand-fill
                        the workload fields; instantiate through
                        make_pipeline_config / make_full_config (the
                        scenario registry) so every example states *what*
                        it simulates and picks up scenario-wide knobs
                        (broadphase, sharding, governor, faults) from the
                        single surface. Additionally, neither examples/
                        nor bench/ may assign into cfg.task1.* /
                        cfg.task23.* directly: those bundles are owned by
                        Scenario::policy (and, at run time, by the
                        degradation ladder) — poking them from a driver
                        silently diverges from what `--scenario` claims
                        to run. Tests are exempt (they probe params on
                        purpose).
  sync-wrapper          raw std::mutex / std::lock_guard /
                        std::unique_lock / std::scoped_lock are forbidden
                        in src/ outside src/core/sync/: a raw mutex is
                        invisible to the Clang thread-safety analysis
                        (docs/STATIC_ANALYSIS.md, layer 5), so data it
                        guards can be touched lock-free without any
                        build breaking. Lock through atm::sync::Mutex /
                        MutexLock instead.
  intrinsics-containment
                        raw vector intrinsics (<immintrin.h> and
                        friends, _mm*_* calls, __m128/__m256 types) are
                        forbidden outside src/core/kern/: the batch
                        kernels are the one seam where lane-level code
                        lives, with a scalar twin and bit-exactness
                        tests. An intrinsic sprinkled elsewhere has
                        neither, and silently breaks non-x86 or
                        ATM_HOST_SIMD=OFF builds. Call the kernel API
                        (src/core/kern/kernels.hpp) instead.

Usage:
  lint_atm.py [ROOT]    lint ROOT (default: repo root containing tools/)
  lint_atm.py --self-test
                        run the built-in fixture test: a synthetic tree
                        with one seeded violation per rule must yield
                        exactly those violations, and a clean tree none.

Exit status: 0 = clean, 1 = violations found, 2 = usage/setup error.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

RULES = (
    "nvi-private-final",
    "units-suffix",
    "no-nondeterminism",
    "backend-registration",
    "nolint-reason",
    "scenario-configs",
    "sync-wrapper",
    "intrinsics-containment",
)

# --- units-suffix vocabulary -------------------------------------------------

#: A parameter name passes when any underscore-separated token names a unit.
UNIT_TOKENS = {
    "nm", "ms", "us", "ns", "s", "sec", "seconds", "minutes", "hours",
    "periods", "cycles", "deg", "degrees", "rad", "feet", "ft", "knots",
    "hz", "mhz", "ghz", "gbps", "bytes", "bits", "frac", "fraction",
    "ratio", "probability", "alpha", "efficiency", "coeff", "ops",
}

#: Dimensionless or locally-conventional names (coordinates are nm by
#: repo-wide convention; generic math helpers take unitless scalars).
ALLOWED_NAMES = {
    "x", "y", "z", "dx", "dy", "dz", "xi", "yi", "x0", "x1", "y0", "y1",
    "rx", "ry", "px", "py", "cx", "cy", "vx", "vy", "vxi", "vyi",
    "alt", "alti", "alt_a", "alt_b",
    "speed", "v", "p", "c", "r", "d", "lo", "hi", "tol", "value", "w",
    "weight", "mean", "sse", "rmse", "r2", "adj_r2", "a", "b", "n", "t",
}

NVI_HOOK = re.compile(r"\b(do_run_\w+|do_generate_radar|on_terrain_attached)\b")
FORBIDDEN_CALLS = (
    re.compile(r"\bstd::rand\b"),
    re.compile(r"(?<![\w:])srand\s*\("),
    re.compile(r"(?<![\w:.])rand\s*\(\s*\)"),
    re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&)"),
    re.compile(r"\bstd::time\s*\("),
    re.compile(r"\brandom_device\b"),
)
DOUBLE_PARAM = re.compile(
    r"(?<![\w.])double\s+(\w+)\s*(?:=\s*[^,;()]+)?\s*[,)]")
NOLINT = re.compile(r"NOLINT(NEXTLINE)?(\(([^)]*)\))?(.*)")
BACKEND_CLASS = re.compile(r"class\s+(\w+Backend)[\w\s]*:\s*public\s+Backend")
HANDROLLED_CONFIG = re.compile(
    r"\b(?:\w+::)*(PipelineConfig|FullSystemConfig)\s+\w+\s*;")
#: Assignment into a task-parameter bundle (`cfg.task1.x = ...`). The
#: trailing [^=] keeps comparisons (`==`) out.
TASK_PARAM_POKE = re.compile(r"\.(task1|task23)(?:\.\w+)+\s*=(?!=)")
#: Raw standard lock types (sync-wrapper). Matched on code with line
#: comments stripped, so prose mentioning std::mutex stays legal.
RAW_SYNC_TYPE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")
#: Raw x86 vector intrinsics (intrinsics-containment). Matched on code
#: with line comments stripped, so prose mentioning _mm256_min_pd stays
#: legal. Covers the intrinsic headers, _mm*_* calls, and __m### types.
SIMD_INTRINSIC = re.compile(
    r"#\s*include\s*<\w*intrin\.h>"
    r"|\b_mm\d{0,3}_\w+"
    r"|\b__m\d{2,3}[di]?\b")


class Violation:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _waived(lines: list[str], idx: int, rule: str) -> bool:
    """True when line idx (0-based) or the line above carries a waiver."""
    tag = f"atm-lint: allow({rule})"
    if tag in lines[idx]:
        return True
    return idx > 0 and tag in lines[idx - 1]


# --- rules -------------------------------------------------------------------

def check_nvi_private_final(path: Path, text: str) -> list[Violation]:
    if path.name == "backend.hpp":
        return []
    out: list[Violation] = []
    lines = text.splitlines()
    access = "private"  # class bodies start private; structs don't override
    class_final = False
    # Join continuation lines so a hook's trailing `final`/`override` on the
    # next physical line still counts as part of its declaration.
    for i, line in enumerate(lines):
        stripped = line.strip()
        m = re.search(r"class\s+\w+[^;{]*", stripped)
        if m and ("{" in line or ":" in stripped):
            class_final = bool(re.search(r"class\s+\w+\s+final\b", stripped))
            access = "private"
        for spec in ("public", "protected", "private"):
            if re.match(rf"{spec}\s*:", stripped):
                access = spec
        hook = NVI_HOOK.search(line)
        if not hook or "=" in stripped.split("(")[0]:
            continue
        # Only declarations (not calls): require a type before the name or
        # the name at the start of the line.
        decl = re.search(rf"[\w>&\]]\s+{hook.group(1)}\s*\(", line) or \
            re.match(rf"\s*{hook.group(1)}\s*\(", line)
        if not decl:
            continue
        if _waived(lines, i, "nvi-private-final"):
            continue
        block = " ".join(lines[i:i + 6])
        decl_text = block.split("{")[0].split(";")[0]
        is_final = class_final or re.search(r"\bfinal\b", decl_text)
        if access != "private":
            out.append(Violation(
                "nvi-private-final", path, i + 1,
                f"{hook.group(1)} override must be private "
                f"(found in {access} section)"))
        elif not is_final:
            out.append(Violation(
                "nvi-private-final", path, i + 1,
                f"{hook.group(1)} override must be final "
                "(or the class must be)"))
    return out


def check_units_suffix(path: Path, text: str) -> list[Violation]:
    out: list[Violation] = []
    lines = text.splitlines()
    for m in DOUBLE_PARAM.finditer(text):
        name = m.group(1)
        if name.endswith("_") or re.match(r"k[A-Z]", name):
            continue  # members / constants, not parameters
        if name in ALLOWED_NAMES:
            continue
        if UNIT_TOKENS.intersection(name.lower().split("_")):
            continue
        line_no = text.count("\n", 0, m.start()) + 1
        # Prose like "4-wide double lanes" in a comment is not a
        # parameter: skip matches at or past a line comment marker.
        line_start = text.rfind("\n", 0, m.start()) + 1
        comment_col = lines[line_no - 1].find("//")
        if comment_col != -1 and m.start() - line_start >= comment_col:
            continue
        if _waived(lines, line_no - 1, "units-suffix"):
            continue
        out.append(Violation(
            "units-suffix", path, line_no,
            f"double parameter '{name}' has no unit suffix "
            "(use _nm/_ms/_periods/_feet/... or a units.hpp constant)"))
    return out


def check_no_nondeterminism(path: Path, text: str) -> list[Violation]:
    out: list[Violation] = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        for pat in FORBIDDEN_CALLS:
            if pat.search(line) and not _waived(lines, i, "no-nondeterminism"):
                out.append(Violation(
                    "no-nondeterminism", path, i + 1,
                    f"forbidden nondeterminism source: "
                    f"'{pat.search(line).group(0).strip()}' "
                    "(use core::Rng with an explicit seed)"))
    return out


def check_nolint_reason(path: Path, text: str) -> list[Violation]:
    out: list[Violation] = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        for m in NOLINT.finditer(line):
            if _waived(lines, i, "nolint-reason"):
                continue
            checks, trailer = m.group(3), (m.group(4) or "").strip()
            trailer = trailer.lstrip("*/ ").strip()  # close of /* */ comments
            if not checks:
                out.append(Violation(
                    "nolint-reason", path, i + 1,
                    "bare NOLINT: name the suppressed check, "
                    "NOLINT(<check>): <reason>"))
            elif not trailer.lstrip(":- "):
                out.append(Violation(
                    "nolint-reason", path, i + 1,
                    f"NOLINT({checks}) has no reason: "
                    "append ': <why this is safe>'"))
    return out


def check_scenario_configs(path: Path, text: str,
                           handrolled: bool = True) -> list[Violation]:
    out: list[Violation] = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if handrolled:
            m = HANDROLLED_CONFIG.search(line)
            if m and not _waived(lines, i, "scenario-configs"):
                maker = ("make_pipeline_config"
                         if m.group(1) == "PipelineConfig"
                         else "make_full_config")
                out.append(Violation(
                    "scenario-configs", path, i + 1,
                    f"hand-rolled {m.group(1)} in an example: instantiate "
                    f"via {maker}(<scenario>, ...) and override fields "
                    "after"))
        poke = TASK_PARAM_POKE.search(line)
        if poke and not _waived(lines, i, "scenario-configs"):
            out.append(Violation(
                "scenario-configs", path, i + 1,
                f"direct write into {poke.group(1)} params: route this "
                "knob through Scenario::policy (scenarios.hpp) so the "
                "scenario name still describes the run"))
    return out


def check_sync_wrapper(path: Path, text: str) -> list[Violation]:
    # src/core/sync/ is the annotated wrapper layer itself — the one
    # place allowed to name the raw standard types.
    if "core/sync" in path.as_posix():
        return []
    out: list[Violation] = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        code = line.split("//", 1)[0]
        m = RAW_SYNC_TYPE.search(code)
        if m and not _waived(lines, i, "sync-wrapper"):
            out.append(Violation(
                "sync-wrapper", path, i + 1,
                f"raw {m.group(0)} in src/: the thread-safety analysis "
                "cannot see it — use atm::sync::Mutex / MutexLock "
                "(src/core/sync/mutex.hpp)"))
    return out


def check_intrinsics_containment(path: Path, text: str) -> list[Violation]:
    # src/core/kern/ is the SIMD kernel layer itself — the one place
    # allowed to name raw vector intrinsics.
    if "core/kern" in path.as_posix():
        return []
    out: list[Violation] = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        code = line.split("//", 1)[0]
        m = SIMD_INTRINSIC.search(code)
        if m and not _waived(lines, i, "intrinsics-containment"):
            out.append(Violation(
                "intrinsics-containment", path, i + 1,
                f"raw SIMD intrinsic '{m.group(0).strip()}' outside "
                "src/core/kern/: route lane-level code through the "
                "batch-kernel API (src/core/kern/kernels.hpp)"))
    return out


def check_backend_registration(src: Path) -> list[Violation]:
    platforms = src / "atm" / "platforms.cpp"
    if not platforms.is_file():
        return []
    registry = platforms.read_text(encoding="utf-8")
    out: list[Violation] = []
    for header in sorted((src / "atm").glob("*_backend.hpp")):
        text = header.read_text(encoding="utf-8")
        lines = text.splitlines()
        for m in BACKEND_CLASS.finditer(text):
            line_no = text.count("\n", 0, m.start()) + 1
            if _waived(lines, line_no - 1, "backend-registration"):
                continue
            if m.group(1) not in registry:
                out.append(Violation(
                    "backend-registration", header, line_no,
                    f"{m.group(1)} is not constructed anywhere in "
                    "src/atm/platforms.cpp: register a make_* factory"))
    return out


# --- driver ------------------------------------------------------------------

def lint(root: Path) -> list[Violation]:
    src = root / "src"
    if not src.is_dir():
        print(f"lint_atm: no src/ under {root}", file=sys.stderr)
        sys.exit(2)
    violations: list[Violation] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h"):
            continue
        text = path.read_text(encoding="utf-8")
        if path.suffix in (".hpp", ".h"):
            violations += check_nvi_private_final(path, text)
            violations += check_units_suffix(path, text)
        violations += check_no_nondeterminism(path, text)
        violations += check_nolint_reason(path, text)
        violations += check_sync_wrapper(path, text)
        violations += check_intrinsics_containment(path, text)
    violations += check_backend_registration(src)
    examples = root / "examples"
    if examples.is_dir():
        for path in sorted(examples.rglob("*.cpp")):
            text = path.read_text(encoding="utf-8")
            violations += check_scenario_configs(path, text)
            violations += check_intrinsics_containment(path, text)
    bench = root / "bench"
    if bench.is_dir():
        # Benches may hand-assemble configs (they sweep axes on purpose)
        # but must not poke task-parameter bundles past the scenario.
        for path in sorted(bench.rglob("*.cpp")):
            text = path.read_text(encoding="utf-8")
            violations += check_scenario_configs(path, text,
                                                 handrolled=False)
            violations += check_intrinsics_containment(path, text)
    return violations


# --- self test ---------------------------------------------------------------

_FIXTURE_CLEAN = {
    "src/atm/platforms.cpp": """
#include "src/atm/good_backend.hpp"
std::unique_ptr<Backend> make_good() {
  return std::make_unique<GoodBackend>();
}
""",
    "src/atm/good_backend.hpp": """
class GoodBackend final : public Backend {
 public:
  void load() override;
 private:
  Task1Result do_run_task1(RadarFrame& frame,
                           const Task1Params& params) final;
};
double fly(double range_nm, double wait_periods = 2.0);
int i = foo();  // NOLINT(bugprone-thing): fixture needs the raw call
""",
    "examples/good_example.cpp": """
int main() {
  tasks::PipelineConfig cfg = tasks::make_pipeline_config(scenario);
  cfg.aircraft = 42;
}
""",
    "bench/good_bench.cpp": """
int main() {
  tasks::Scenario s = tasks::dense_en_route();
  s.policy.governor.enabled = true;
  tasks::PipelineConfig cfg = tasks::make_pipeline_config(s);
  bool brute = cfg.task1.broadphase == core::spatial::kBruteForce;
}
""",
    # The wrapper layer itself may (must) name the raw types...
    "src/core/sync/mutex.hpp": """
#include <mutex>
namespace atm::sync {
class Mutex {
 private:
  std::mutex m_;
};
}
""",
    # ...elsewhere a comment mention is fine, and a waiver silences a use.
    "src/rt/good_waiter.cpp": """
// interop shim over a std::mutex owned by the embedding app
void pump(App& app) {
  // atm-lint: allow(sync-wrapper): foreign lock owned by the host app
  std::lock_guard<std::mutex> lk(app.mu);
  app.drain();
}
""",
    # The kernel layer itself may (must) use raw intrinsics...
    "src/core/kern/good_kernels.cpp": """
#include <immintrin.h>
__m256d splat(double v) { return _mm256_set1_pd(v); }
""",
    # ...elsewhere a comment mention is fine, and a waiver silences a use.
    "src/rt/good_pause.cpp": """
// spin hint comparable to _mm_pause on x86
void spin() {
  // atm-lint: allow(intrinsics-containment): pause hint, no lane math
  _mm_pause();
}
""",
}

_FIXTURE_VIOLATIONS = {
    # one seeded violation per rule, each on a known line
    "src/atm/bad_backend.hpp": """
class BadBackend final : public Backend {
 public:
  Task1Result do_run_task1(RadarFrame& frame,
                           const Task1Params& params) override;
};
class OrphanBackend final : public Backend {};
double climb(double rate);
""",
    "src/core/clock.cpp": """
#include <ctime>
static long stamp() { return time(nullptr); }
static int noise() { return std::rand(); }  // NOLINT
""",
    "examples/bad_example.cpp": """
int main() {
  tasks::PipelineConfig cfg;
  cfg.aircraft = 42;
}
""",
    "bench/bad_bench.cpp": """
int main() {
  tasks::PipelineConfig cfg = tasks::make_pipeline_config(scenario);
  cfg.task23.resolution.turn_step_deg = 6.0;
}
""",
    "src/obs/bad_sink.hpp": """
#pragma once
#include <mutex>
class BadSink {
 private:
  std::mutex m_;
};
""",
    "src/atm/bad_simd.cpp": """
#include <immintrin.h>
double sum4(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  return v[0] + v[1] + v[2] + v[3];
}
""",
}


def self_test() -> int:
    with tempfile.TemporaryDirectory(prefix="lint_atm_fixture_") as tmp:
        root = Path(tmp)
        for rel, content in {**_FIXTURE_CLEAN, **_FIXTURE_VIOLATIONS}.items():
            dest = root / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(content, encoding="utf-8")
        got = lint(root)
        by_rule: dict[str, int] = {}
        for v in got:
            by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
        want = {
            "nvi-private-final": 1,   # do_run_task1 public, not final
            "units-suffix": 1,        # 'rate' unlabeled
            "no-nondeterminism": 2,   # time(nullptr), std::rand
            "backend-registration": 2,  # BadBackend + OrphanBackend
            "nolint-reason": 1,       # bare NOLINT
            # hand-rolled PipelineConfig + bench task-param poke
            "scenario-configs": 2,
            "sync-wrapper": 1,        # raw std::mutex outside core/sync
            # immintrin.h include + __m256d use, outside core/kern
            "intrinsics-containment": 2,
        }
        ok = by_rule == want
        if not ok:
            print(f"self-test FAILED: want {want}, got {by_rule}",
                  file=sys.stderr)
            for v in got:
                print(f"  {v}", file=sys.stderr)
            return 1

        # The clean fixture alone must produce nothing.
        for rel in _FIXTURE_VIOLATIONS:
            (root / rel).unlink()
        leftover = lint(root)
        if leftover:
            print("self-test FAILED: clean fixture not clean:",
                  file=sys.stderr)
            for v in leftover:
                print(f"  {v}", file=sys.stderr)
            return 1
    print("lint_atm self-test: ok")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    violations = lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"lint_atm: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint_atm: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
