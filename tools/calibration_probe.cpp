// Throwaway-ish calibration probe: prints modeled task times per platform
// across aircraft counts, so the cost-model constants can be sanity-checked
// against the figure shapes before the full benches run. Kept in tools/
// (not part of the default build) for future re-calibration.
#include <cstdio>

#include "src/airfield/setup.hpp"
#include "src/atm/platforms.hpp"
#include "src/atm/pipeline.hpp"
#include "src/rt/clock.hpp"

int main() {
  using namespace atm;
  const std::size_t ns[] = {500, 1000, 2000, 4000, 8000};
  for (const std::size_t n : ns) {
    const airfield::FlightDb field = airfield::make_airfield(n, 42);
    std::printf("== n = %zu ==\n", n);
    auto platforms = tasks::make_platforms(tasks::PlatformSet::kAllPlatforms);
    platforms.push_back(tasks::make_reference());
    for (auto& p : platforms) {
      rt::Stopwatch wall;
      p->load(field);
      core::Rng rng(7);
      double radar_ms = 0.0;
      airfield::RadarFrame frame = p->generate_radar(rng, {}, &radar_ms);
      const auto r1 = p->run_task1(frame, {});
      const auto r23 = p->run_task23({});
      std::printf(
          "  %-32s t1=%10.3f ms  t23=%10.3f ms  radar=%6.3f ms  "
          "[match=%llu disc=%llu unm=%llu amb=%llu | conf=%llu crit=%llu "
          "res=%llu unres=%llu rescans=%llu]  wall=%.0f ms\n",
          p->name().c_str(), r1.modeled_ms, r23.modeled_ms, radar_ms,
          (unsigned long long)r1.stats.matched,
          (unsigned long long)r1.stats.discarded_radars,
          (unsigned long long)r1.stats.unmatched_radars,
          (unsigned long long)r1.stats.ambiguous_aircraft,
          (unsigned long long)r23.stats.conflicts,
          (unsigned long long)r23.stats.critical,
          (unsigned long long)r23.stats.resolved,
          (unsigned long long)r23.stats.unresolved,
          (unsigned long long)r23.stats.rescans, wall.elapsed_ms());
    }
  }
  return 0;
}
