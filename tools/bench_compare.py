#!/usr/bin/env python3
"""Diff two bench JSON reports (bench/common.hpp JsonReport schema).

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--regression-pct N]
  bench_compare.py --self-test

Rows are matched by their configuration fields (task, kernel, broadphase,
backend, aircraft, ...) — everything except the measurement fields. Two
checks per matched row:

  * outcome digest — the FNV-1a digest over the task's outcome counters
    is deterministic across hosts, kernels, broadphases, and shard
    configurations, so ANY mismatch means the two builds computed
    different ATM answers: hard failure (exit 1). Same for a baseline
    row the current report no longer produces, and for reports from
    different benches or scenarios.
  * wall time — wall_ms is noisy (especially in ATM_BENCH_SMOKE runs on
    shared CI machines), so a slowdown beyond the threshold (default
    +20%) only prints a `WARN:` line and never changes the exit code.
    Treat warnings as a prompt to re-measure, not as a verdict.

CI compares each leg's fresh BENCH_*.json against the checked-in
bench/baselines/ snapshot; regenerate a baseline with
`ATM_BENCH_SMOKE=1 build/bench/bench_<name> --json bench/baselines/BENCH_<name>.json`
whenever an outcome legitimately changes (and say why in the commit).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# Per-row measurement fields: everything else identifies the row.
# (speedup is a wall-time ratio, lanes_masked depends on host AVX2
# support; conflict_lanes and the digests are outcomes and DO identify.)
MEASUREMENT_FIELDS = {"wall_ms", "modeled_ms", "digest", "lanes_masked",
                      "speedup"}

# Params that describe the machine/run rather than the workload, ignored
# when checking that two reports ran the same configuration.
VOLATILE_PARAMS = {"avx2_available"}

DEFAULT_REGRESSION_PCT = 20.0


def row_key(row: dict) -> tuple:
    return tuple(sorted((k, v) for k, v in row.items()
                        if k not in MEASUREMENT_FIELDS))


def fmt_key(key: tuple) -> str:
    return " ".join(f"{k}={v}" for k, v in key)


def compare(baseline: dict, current: dict,
            regression_pct: float = DEFAULT_REGRESSION_PCT,
            out=sys.stdout) -> int:
    """Returns the exit code: 0 clean (warnings allowed), 1 hard failure."""
    failures = 0
    warnings = 0

    for field in ("bench", "scenario"):
        if baseline.get(field) != current.get(field):
            print(f"FAIL: {field} differs: baseline "
                  f"{baseline.get(field)!r} vs current "
                  f"{current.get(field)!r}", file=out)
            failures += 1

    base_params = {k: v for k, v in baseline.get("params", {}).items()
                   if k not in VOLATILE_PARAMS}
    cur_params = {k: v for k, v in current.get("params", {}).items()
                  if k not in VOLATILE_PARAMS}
    if base_params != cur_params:
        # Different sweep/reps make wall-time comparison meaningless but
        # digests still must agree on whatever rows match.
        print(f"WARN: run params differ: baseline {base_params} vs "
              f"current {cur_params}", file=out)
        warnings += 1

    base_rows = {row_key(r): r for r in baseline.get("results", [])}
    cur_rows = {row_key(r): r for r in current.get("results", [])}

    for key, base_row in base_rows.items():
        cur_row = cur_rows.get(key)
        if cur_row is None:
            print(f"FAIL: row missing from current report: {fmt_key(key)}",
                  file=out)
            failures += 1
            continue
        base_digest = base_row.get("digest")
        cur_digest = cur_row.get("digest")
        if base_digest != cur_digest:
            print(f"FAIL: outcome digest changed for {fmt_key(key)}: "
                  f"{base_digest} -> {cur_digest}", file=out)
            failures += 1
        base_wall = base_row.get("wall_ms")
        cur_wall = cur_row.get("wall_ms")
        if (isinstance(base_wall, (int, float)) and
                isinstance(cur_wall, (int, float)) and base_wall > 0.0):
            pct = (cur_wall / base_wall - 1.0) * 100.0
            if pct > regression_pct:
                print(f"WARN: wall_ms +{pct:.1f}% for {fmt_key(key)}: "
                      f"{base_wall:.3f} -> {cur_wall:.3f} ms", file=out)
                warnings += 1

    for key in cur_rows.keys() - base_rows.keys():
        print(f"WARN: new row not in baseline: {fmt_key(key)}", file=out)
        warnings += 1

    if failures:
        print(f"bench_compare: {failures} failure(s), {warnings} "
              f"warning(s)", file=out)
        return 1
    print(f"bench_compare: outcomes identical across "
          f"{len(base_rows)} row(s), {warnings} warning(s)", file=out)
    return 0


# --- self-test fixtures ------------------------------------------------------

def _report(rows: list[dict]) -> dict:
    return {"bench": "host_simd", "scenario": "dense-en-route",
            "params": {"smoke": 1, "avx2_available": 1},
            "results": rows}


def _row(task: str, kernel: str, wall: float, digest: str) -> dict:
    return {"task": task, "kernel": kernel, "aircraft": 600,
            "wall_ms": wall, "modeled_ms": wall, "digest": digest,
            "lanes_masked": 0}


def self_test() -> int:
    import io

    base = _report([_row("task1", "scalar", 1.0, "aaaa"),
                    _row("task1", "avx2", 0.5, "aaaa")])

    cases = [
        # (name, current report, want exit, want substrings in output)
        ("identical", _report([_row("task1", "scalar", 1.0, "aaaa"),
                               _row("task1", "avx2", 0.5, "aaaa")]),
         0, ["outcomes identical"]),
        ("noise_below_threshold",
         _report([_row("task1", "scalar", 1.15, "aaaa"),
                  _row("task1", "avx2", 0.55, "aaaa")]),
         0, ["outcomes identical", "0 warning(s)"]),
        ("digest_mismatch",
         _report([_row("task1", "scalar", 1.0, "bbbb"),
                  _row("task1", "avx2", 0.5, "aaaa")]),
         1, ["FAIL: outcome digest changed", "aaaa -> bbbb"]),
        ("regression_warns",
         _report([_row("task1", "scalar", 1.5, "aaaa"),
                  _row("task1", "avx2", 0.5, "aaaa")]),
         0, ["WARN: wall_ms +50.0%", "1 warning(s)"]),
        ("missing_row",
         _report([_row("task1", "scalar", 1.0, "aaaa")]),
         1, ["FAIL: row missing from current report"]),
        ("extra_row_warns",
         _report([_row("task1", "scalar", 1.0, "aaaa"),
                  _row("task1", "avx2", 0.5, "aaaa"),
                  _row("task23", "scalar", 9.0, "cccc")]),
         0, ["WARN: new row not in baseline"]),
        # Host without AVX2 support: lanes_masked differs, avx2_available
        # differs — neither is a row identity nor a failure.
        ("host_differences_ignored",
         {**_report([{**_row("task1", "scalar", 1.0, "aaaa"),
                      "lanes_masked": 77},
                     _row("task1", "avx2", 0.5, "aaaa")]),
          "params": {"smoke": 1, "avx2_available": 0}},
         0, ["outcomes identical", "0 warning(s)"]),
    ]

    ok = True
    for name, current, want_exit, want_texts in cases:
        out = io.StringIO()
        got = compare(base, current, out=out)
        text = out.getvalue()
        if got != want_exit:
            print(f"self-test FAILED [{name}]: exit {got}, want "
                  f"{want_exit}\n{text}")
            ok = False
        for want in want_texts:
            if want not in text:
                print(f"self-test FAILED [{name}]: output missing "
                      f"{want!r}\n{text}")
                ok = False

    # Mismatched bench names must hard-fail regardless of rows.
    out = io.StringIO()
    other = dict(base, bench="sharding")
    if compare(base, other, out=out) != 1:
        print("self-test FAILED [bench_name]: expected exit 1")
        ok = False

    print("bench_compare self-test:", "ok" if ok else "FAILED")
    return 0 if ok else 1


def main(argv: list[str]) -> int:
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    args = [a for a in argv[1:] if not a.startswith("--")]
    pct = DEFAULT_REGRESSION_PCT
    for a in argv[1:]:
        if a.startswith("--regression-pct="):
            pct = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = json.loads(Path(args[0]).read_text(encoding="utf-8"))
    current = json.loads(Path(args[1]).read_text(encoding="utf-8"))
    return compare(baseline, current, regression_pct=pct)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
