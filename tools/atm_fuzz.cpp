// atm_fuzz: command-line front end of the testkit (docs/TESTING.md).
//
//   atm_fuzz --seeds <first>:<count> [--budget-ms N] [--require N]
//            [--deep-every N] [--emit-dir DIR]
//       Fuzz consecutive seeds through the differential oracle. Exit 0
//       iff every case agreed and the case quota was met. With
//       --emit-dir, every divergent seed is shrunk and written there as
//       a corpus entry ready to check in under tests/corpus/.
//
//   atm_fuzz --replay <file.seed> [more files...]
//       Replay corpus entries through the full oracle (the tier-1
//       corpus ctest entries run exactly this). Exit 0 iff all clean.
//
//   atm_fuzz --save-seed <seed> --out <file.seed> [--name NAME]
//       Write the corpus entry for one forged seed (no overrides) — how
//       interesting seeds get promoted into tests/corpus/.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/testkit/corpus.hpp"
#include "src/testkit/fuzz.hpp"
#include "src/testkit/shrink.hpp"

namespace {

using atm::testkit::CorpusEntry;
using atm::testkit::ForgedCase;

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage:\n"
      << "  " << argv0
      << " --seeds <first>:<count> [--budget-ms N] [--require N]\n"
      << "      [--deep-every N] [--emit-dir DIR]\n"
      << "  " << argv0 << " --replay <file.seed> [more...]\n"
      << "  " << argv0
      << " --save-seed <seed> --out <file.seed> [--name NAME]\n";
  std::exit(2);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

int replay(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    CorpusEntry entry;
    std::string error;
    if (!atm::testkit::load(path, entry, error)) {
      std::cerr << path << ": " << error << '\n';
      ++failures;
      continue;
    }
    const ForgedCase c = entry.materialize();
    const atm::testkit::OracleReport report = atm::testkit::check_case(c);
    if (report.ok()) {
      std::cout << path << ": OK (" << entry.name << ", seed " << entry.seed
                << ", " << c.db.size() << " aircraft, " << report.runs
                << " runs)\n";
    } else {
      std::cerr << path << ": DIVERGED (" << entry.name << ", seed "
                << entry.seed << ")\n"
                << report.to_string();
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

/// Shrink a divergent seed and emit the minimal repro as a corpus entry.
void emit_repro(std::uint64_t seed, const atm::testkit::ForgeParams& forge,
                const std::string& dir) {
  const auto still_fails = [](const ForgedCase& c) {
    return !atm::testkit::check_case(c).ok();
  };
  const atm::testkit::ShrinkResult shrunk =
      atm::testkit::shrink_case(seed, forge, {}, still_fails);
  const std::string name = "diverged-seed-" + std::to_string(seed);
  const CorpusEntry entry = atm::testkit::make_entry(
      name, shrunk.minimal,
      "auto-shrunk by atm_fuzz --emit-dir; " +
          std::to_string(shrunk.minimal.db.size()) + " aircraft");
  const std::string path = dir + "/" + name + ".seed";
  if (atm::testkit::save(path, entry)) {
    std::cout << "emitted " << path << " (" << shrunk.minimal.db.size()
              << " aircraft after " << shrunk.evaluations
              << " shrink evaluations)\n";
  } else {
    std::cerr << "cannot write " << path << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> replay_paths;
  std::string emit_dir;
  std::string out_path;
  std::string save_name;
  std::uint64_t save_seed = 0;
  bool do_save = false;
  atm::testkit::FuzzOptions options;
  bool do_fuzz = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seeds") {
      const std::string spec = next();
      const std::size_t colon = spec.find(':');
      std::uint64_t count = 0;
      if (colon == std::string::npos ||
          !parse_u64(spec.substr(0, colon).c_str(), options.first_seed) ||
          !parse_u64(spec.substr(colon + 1).c_str(), count) || count == 0) {
        std::cerr << "--seeds wants <first>:<count>\n";
        return 2;
      }
      options.cases = static_cast<int>(count);
      do_fuzz = true;
    } else if (arg == "--budget-ms") {
      options.budget_ms = std::atof(next());
    } else if (arg == "--require") {
      options.require_cases = std::atoi(next());
    } else if (arg == "--deep-every") {
      options.deep_every = std::max(1, std::atoi(next()));
    } else if (arg == "--emit-dir") {
      emit_dir = next();
    } else if (arg == "--replay") {
      replay_paths.emplace_back(next());
    } else if (arg == "--save-seed") {
      if (!parse_u64(next(), save_seed)) usage(argv[0]);
      do_save = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--name") {
      save_name = next();
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << '\n';
      usage(argv[0]);
    } else {
      // Bare arguments after --replay are more corpus files.
      replay_paths.push_back(arg);
    }
  }

  if (do_save) {
    if (out_path.empty()) usage(argv[0]);
    const ForgedCase c = atm::testkit::forge_case(save_seed, options.forge);
    if (save_name.empty()) {
      save_name = "seed-" + std::to_string(save_seed);
    }
    const CorpusEntry entry = atm::testkit::make_entry(
        save_name, c, "promoted by atm_fuzz --save-seed");
    if (!atm::testkit::save(out_path, entry)) {
      std::cerr << "cannot write " << out_path << '\n';
      return 1;
    }
    std::cout << "wrote " << out_path << " (" << c.db.size()
              << " aircraft)\n";
    return 0;
  }

  if (!replay_paths.empty()) return replay(replay_paths);
  if (!do_fuzz) usage(argv[0]);

  const atm::testkit::FuzzSummary summary =
      atm::testkit::run_fuzz(options, &std::cout);
  if (!emit_dir.empty()) {
    for (const atm::testkit::FuzzFailure& failure : summary.failures) {
      emit_repro(failure.seed, options.forge, emit_dir);
    }
  }
  return summary.ok() ? 0 : 1;
}
