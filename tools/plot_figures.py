#!/usr/bin/env python3
"""Plot the figure-reproduction CSVs as PNGs.

Usage:
    mkdir -p out && ATM_BENCH_CSV_DIR=out ./build/bench/bench_fig4_task1_all_platforms
    ... (any of the figure benches; each writes <out>/<figure-slug>.csv)
    python3 tools/plot_figures.py out

Requires matplotlib. Each CSV has an `aircraft` column followed by one
`<platform> [ms]` column per series; the plot uses a log y-axis, which is
how the paper's wide-dynamic-range comparisons are easiest to read.
"""
import csv
import pathlib
import sys


def plot_csv(path: pathlib.Path, out_dir: pathlib.Path) -> None:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    with path.open() as fh:
        rows = list(csv.reader(fh))
    header, data = rows[0], rows[1:]
    xs = [float(r[0]) for r in data]

    fig, ax = plt.subplots(figsize=(7, 4.5))
    for col in range(1, len(header)):
        ys = [float(r[col]) for r in data]
        label = header[col].replace(" [ms]", "")
        ax.plot(xs, ys, marker="o", label=label)
    ax.set_xlabel("aircraft")
    ax.set_ylabel("modeled task time [ms]")
    ax.set_yscale("log")
    ax.set_title(path.stem.replace("-", " "))
    ax.grid(True, which="both", alpha=0.3)
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = out_dir / (path.stem + ".png")
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    csv_dir = pathlib.Path(sys.argv[1])
    csvs = sorted(csv_dir.glob("*.csv"))
    if not csvs:
        print(f"no CSVs in {csv_dir}; run the benches with "
              f"ATM_BENCH_CSV_DIR={csv_dir} first")
        return 1
    for path in csvs:
        plot_csv(path, csv_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
