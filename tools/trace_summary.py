#!/usr/bin/env python3
"""Summarize a JSONL execution trace from the obs layer.

Usage:
    ./build/examples/atm_cli --platform titanx --cycles 2 --trace out.jsonl
    python3 tools/trace_summary.py out.jsonl

    ATM_BENCH_TRACE=fig6.jsonl ./build/bench/bench_fig6_task2_cuda_vs_cpu
    python3 tools/trace_summary.py fig6.jsonl

Every line of the input is one JSON object (see docs/TRACING.md for the
schema). The summary prints, per backend:

  * a per-task deadline table (met / missed / skipped, worst slack),
  * a per-period miss table — one row per (cycle, period) that had at
    least one missed or skipped deadline, so a clean run prints none, and
  * a broadphase pruning table — per (task, broadphase mode, dispatched
    host kernel), the mean candidate pairs enumerated per period, the
    mean exact tests that survived, the mean host wall time, and the
    mean SIMD tail lanes masked, so grid vs brute effectiveness and
    scalar vs avx2 kernel time are visible from one trace, and
  * a per-sector rollup — for sharded runs (--shard sectors), one row
    per (counter, sector) over the per-sector counter events the host
    backends emit (task1.sector_owned, task23.sector_candidates, ...),
    so load imbalance across the partition is visible from one trace,
    and
  * a governor-transition table — for governed runs (--governor), one
    row per overload-governor level change (kind "governor"), in trace
    order: when the executive degraded, which ladder rung it took, at
    what measured utilization, and when it recovered.

`trace_summary.py --self-test` checks the summary of a built-in fixture
trace against a golden transcript (run by ctest as
trace_summary_self_test).

Only the standard library is required.
"""
import collections
import contextlib
import io
import json
import pathlib
import sys
import tempfile


def fmt_ms(value):
    return "-" if value is None else f"{value:.4f}"


class PruneStats:
    """Candidate/test counts for one (task, broadphase, kernel) combo."""

    def __init__(self):
        self.events = 0
        self.candidates = 0
        self.tests = 0
        self.lanes_masked = 0
        self.measured = []

    def add(self, ev):
        self.events += 1
        # Task 1 reports box_tests; tasks 2+3 report pair_candidates and
        # pair_tests. Fold both shapes into candidates/tests.
        if "pair_candidates" in ev or "pair_tests" in ev:
            self.candidates += ev.get("pair_candidates", 0)
            self.tests += ev.get("pair_tests", 0)
        else:
            self.candidates += ev.get("box_tests", 0)
            self.tests += ev.get("box_tests", 0)
        self.lanes_masked += ev.get("lanes_masked", 0)
        if "measured_ms" in ev:
            self.measured.append(ev["measured_ms"])


class TaskStats:
    def __init__(self):
        self.outcomes = collections.Counter()
        self.worst_slack = None
        self.modeled = []
        self.measured = []

    def add_deadline(self, ev):
        self.outcomes[ev.get("outcome", "?")] += 1
        slack = ev.get("slack_ms")
        if slack is not None and (self.worst_slack is None
                                  or slack < self.worst_slack):
            self.worst_slack = slack

    def add_task(self, ev):
        if "modeled_ms" in ev:
            self.modeled.append(ev["modeled_ms"])
        if "measured_ms" in ev:
            self.measured.append(ev["measured_ms"])


def summarize(path):
    # backend -> task -> TaskStats
    tasks = collections.defaultdict(lambda: collections.defaultdict(TaskStats))
    # backend -> (cycle, period) -> outcome counter
    periods = collections.defaultdict(
        lambda: collections.defaultdict(collections.Counter))
    # backend -> (task, broadphase, kernel) -> PruneStats
    pruning = collections.defaultdict(
        lambda: collections.defaultdict(PruneStats))
    # backend -> (counter, sector) -> [count, total]
    sectors = collections.defaultdict(
        lambda: collections.defaultdict(lambda: [0, 0]))
    # backend -> [governor transition events, in trace order]
    governor = collections.defaultdict(list)
    bad_lines = 0
    events = 0

    with path.open() as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                ev = json.loads(raw)
            except json.JSONDecodeError:
                bad_lines += 1
                continue
            events += 1
            backend = ev.get("backend", "(unknown)")
            kind = ev.get("kind")
            name = ev.get("name", "?")
            if kind == "deadline":
                tasks[backend][name].add_deadline(ev)
                key = (ev.get("cycle", -1), ev.get("period", -1))
                periods[backend][key][ev.get("outcome", "?")] += 1
            elif kind == "task":
                tasks[backend][name].add_task(ev)
                if "broadphase" in ev:
                    # "kernel" is only present for host runs that went
                    # through the batch-kernel layer; "-" keeps the
                    # platform backends in the same table.
                    key = (name, ev["broadphase"], ev.get("kernel", "-"))
                    pruning[backend][key].add(ev)
            elif kind == "counter" and "sector" in ev:
                cell = sectors[backend][(name, ev["sector"])]
                cell[0] += 1
                cell[1] += ev.get("value", 0)
            elif kind == "governor":
                governor[backend].append(ev)

    if bad_lines:
        print(f"warning: {bad_lines} unparseable line(s) skipped",
              file=sys.stderr)
    if events == 0:
        print(f"no trace events in {path}")
        return 1

    for backend in sorted(set(tasks) | set(governor)):
        print(f"\n== {backend} ==")
        print(f"{'task':<10} {'met':>6} {'missed':>7} {'skipped':>8} "
              f"{'worst slack [ms]':>17} {'mean modeled [ms]':>18}")
        for name in sorted(tasks[backend]):
            st = tasks[backend][name]
            mean = (sum(st.modeled) / len(st.modeled)) if st.modeled else None
            print(f"{name:<10} {st.outcomes['met']:>6} "
                  f"{st.outcomes['missed']:>7} {st.outcomes['skipped']:>8} "
                  f"{fmt_ms(st.worst_slack):>17} {fmt_ms(mean):>18}")

        if pruning[backend]:
            print("\nbroadphase pruning (mean per task execution, by "
                  "dispatched kernel):")
            print(f"{'task':<10} {'mode':<6} {'kernel':<7} {'runs':>5} "
                  f"{'candidates':>12} {'exact tests':>12} {'kept':>7} "
                  f"{'wall [ms]':>10} {'lanes masked':>13}")
            for (name, mode, kernel) in sorted(pruning[backend]):
                ps = pruning[backend][(name, mode, kernel)]
                cand = ps.candidates / ps.events
                test = ps.tests / ps.events
                kept = f"{test / cand:6.1%}" if cand else "     -"
                wall = (sum(ps.measured) / len(ps.measured)) \
                    if ps.measured else None
                lanes = ps.lanes_masked / ps.events
                print(f"{name:<10} {mode:<6} {kernel:<7} {ps.events:>5} "
                      f"{cand:>12.1f} {test:>12.1f} {kept:>7} "
                      f"{fmt_ms(wall):>10} {lanes:>13.1f}")

        if sectors[backend]:
            print("\nper-sector rollup (sharded host runs):")
            print(f"{'counter':<24} {'sector':>7} {'events':>7} "
                  f"{'mean':>10} {'total':>12}")
            for (counter, sector) in sorted(sectors[backend]):
                count, total = sectors[backend][(counter, sector)]
                mean = total / count if count else 0.0
                print(f"{counter:<24} {sector:>7} {count:>7} "
                      f"{mean:>10.1f} {total:>12}")

        if governor[backend]:
            transitions = governor[backend]
            print(f"\ngovernor transitions ({len(transitions)}):")
            print(f"{'cycle':>6} {'period':>7} {'action':<8} {'from':>4} "
                  f"{'to':>3} {'rung':<18} {'utilization':>12}")
            for ev in transitions:
                util = ev.get("utilization")
                print(f"{ev.get('cycle', -1):>6} {ev.get('period', -1):>7} "
                      f"{ev.get('outcome', '?'):<8} "
                      f"{ev.get('from_level', -1):>4} "
                      f"{ev.get('level', -1):>3} {ev.get('name', '?'):<18} "
                      f"{fmt_ms(util):>12}")
            final = transitions[-1].get("level", -1)
            print(f"final level: {final}")

        trouble = {key: counts for key, counts in periods[backend].items()
                   if counts["missed"] or counts["skipped"]}
        if not trouble:
            print("all periods clean (no misses, no skips)")
            continue
        print(f"\nperiods with misses or skips ({len(trouble)}):")
        print(f"{'cycle':>6} {'period':>7} {'met':>5} {'missed':>7} "
              f"{'skipped':>8}")
        for (cycle, period) in sorted(trouble):
            counts = trouble[(cycle, period)]
            print(f"{cycle:>6} {period:>7} {counts['met']:>5} "
                  f"{counts['missed']:>7} {counts['skipped']:>8}")
    return 0


# --- self test ---------------------------------------------------------------

#: A hand-written slice of a governed, faulted wall-clock run: the first
#: periods miss, the governor walks down two rungs, holds, then takes one
#: rung back. Key names match src/obs/jsonl_sink.cpp exactly.
_FIXTURE_TRACE = """\
{"kind":"deadline","backend":"xeon","name":"task1","cycle":0,"period":0,"outcome":"missed","slack_ms":-12.5}
{"kind":"governor","backend":"xeon","name":"grid-broadphase","cycle":0,"period":0,"outcome":"degrade","level":1,"from_level":0,"utilization":1.2500}
{"kind":"deadline","backend":"xeon","name":"task1","cycle":0,"period":1,"outcome":"missed","slack_ms":-3.0}
{"kind":"governor","backend":"xeon","name":"raise-sectors","cycle":0,"period":1,"outcome":"degrade","level":2,"from_level":1,"utilization":1.0600}
{"kind":"deadline","backend":"xeon","name":"task1","cycle":0,"period":2,"outcome":"met","slack_ms":4.0}
{"kind":"deadline","backend":"xeon","name":"task1","cycle":0,"period":3,"outcome":"met","slack_ms":6.5}
{"kind":"deadline","backend":"xeon","name":"task23","cycle":0,"period":15,"outcome":"met","slack_ms":10.0}
{"kind":"governor","backend":"xeon","name":"raise-sectors","cycle":1,"period":3,"outcome":"recover","level":1,"from_level":2,"utilization":0.4100}
{"kind":"task","backend":"xeon","name":"task1","cycle":0,"period":2,"measured_ms":3.2,"broadphase":"grid","kernel":"avx2","lanes_masked":6,"pair_candidates":120,"pair_tests":40}
{"kind":"task","backend":"xeon","name":"task1","cycle":0,"period":3,"measured_ms":5.4,"broadphase":"grid","kernel":"scalar","lanes_masked":0,"pair_candidates":120,"pair_tests":40}
"""

#: Golden transcript for the fixture above. Regenerate by running the
#: fixture through summarize() and reviewing the diff — this is the
#: contract for the governor-transition table layout.
_FIXTURE_GOLDEN = """\

== xeon ==
task          met  missed  skipped  worst slack [ms]  mean modeled [ms]
task1           2       2        0          -12.5000                  -
task23          1       0        0           10.0000                  -

broadphase pruning (mean per task execution, by dispatched kernel):
task       mode   kernel   runs   candidates  exact tests    kept  wall [ms]  lanes masked
task1      grid   avx2        1        120.0         40.0   33.3%     3.2000           6.0
task1      grid   scalar      1        120.0         40.0   33.3%     5.4000           0.0

governor transitions (3):
 cycle  period action   from  to rung                utilization
     0       0 degrade     0   1 grid-broadphase          1.2500
     0       1 degrade     1   2 raise-sectors            1.0600
     1       3 recover     2   1 raise-sectors            0.4100
final level: 1

periods with misses or skips (2):
 cycle  period   met  missed  skipped
     0       0     0       1        0
     0       1     0       1        0
"""


def self_test():
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".jsonl", prefix="trace_summary_fixture_",
            delete=False) as fh:
        fh.write(_FIXTURE_TRACE)
        fixture = pathlib.Path(fh.name)
    try:
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            status = summarize(fixture)
        if status != 0:
            print(f"self-test FAILED: summarize returned {status}",
                  file=sys.stderr)
            return 1
        if out.getvalue() != _FIXTURE_GOLDEN:
            print("self-test FAILED: output diverged from the golden "
                  "transcript:", file=sys.stderr)
            import difflib
            diff = difflib.unified_diff(
                _FIXTURE_GOLDEN.splitlines(keepends=True),
                out.getvalue().splitlines(keepends=True),
                fromfile="golden", tofile="got")
            sys.stderr.writelines(diff)
            return 1
    finally:
        fixture.unlink()
    print("trace_summary self-test: ok")
    return 0


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    path = pathlib.Path(sys.argv[1])
    if not path.exists():
        print(f"no such file: {path}")
        return 2
    return summarize(path)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. piped into head
        raise SystemExit(0)
