#!/usr/bin/env python3
"""Summarize a JSONL execution trace from the obs layer.

Usage:
    ./build/examples/atm_cli --platform titanx --cycles 2 --trace out.jsonl
    python3 tools/trace_summary.py out.jsonl

    ATM_BENCH_TRACE=fig6.jsonl ./build/bench/bench_fig6_task2_cuda_vs_cpu
    python3 tools/trace_summary.py fig6.jsonl

Every line of the input is one JSON object (see docs/TRACING.md for the
schema). The summary prints, per backend:

  * a per-task deadline table (met / missed / skipped, worst slack),
  * a per-period miss table — one row per (cycle, period) that had at
    least one missed or skipped deadline, so a clean run prints none, and
  * a broadphase pruning table — per (task, broadphase mode), the mean
    candidate pairs enumerated per period and the mean exact tests that
    survived, so grid vs brute effectiveness is visible from one trace,
    and
  * a per-sector rollup — for sharded runs (--shard sectors), one row
    per (counter, sector) over the per-sector counter events the host
    backends emit (task1.sector_owned, task23.sector_candidates, ...),
    so load imbalance across the partition is visible from one trace.

Only the standard library is required.
"""
import collections
import json
import pathlib
import sys


def fmt_ms(value):
    return "-" if value is None else f"{value:.4f}"


class PruneStats:
    """Candidate/test counts for one (task, broadphase) combination."""

    def __init__(self):
        self.events = 0
        self.candidates = 0
        self.tests = 0

    def add(self, ev):
        self.events += 1
        # Task 1 reports box_tests; tasks 2+3 report pair_candidates and
        # pair_tests. Fold both shapes into candidates/tests.
        if "pair_candidates" in ev or "pair_tests" in ev:
            self.candidates += ev.get("pair_candidates", 0)
            self.tests += ev.get("pair_tests", 0)
        else:
            self.candidates += ev.get("box_tests", 0)
            self.tests += ev.get("box_tests", 0)


class TaskStats:
    def __init__(self):
        self.outcomes = collections.Counter()
        self.worst_slack = None
        self.modeled = []
        self.measured = []

    def add_deadline(self, ev):
        self.outcomes[ev.get("outcome", "?")] += 1
        slack = ev.get("slack_ms")
        if slack is not None and (self.worst_slack is None
                                  or slack < self.worst_slack):
            self.worst_slack = slack

    def add_task(self, ev):
        if "modeled_ms" in ev:
            self.modeled.append(ev["modeled_ms"])
        if "measured_ms" in ev:
            self.measured.append(ev["measured_ms"])


def summarize(path):
    # backend -> task -> TaskStats
    tasks = collections.defaultdict(lambda: collections.defaultdict(TaskStats))
    # backend -> (cycle, period) -> outcome counter
    periods = collections.defaultdict(
        lambda: collections.defaultdict(collections.Counter))
    # backend -> (task, broadphase) -> PruneStats
    pruning = collections.defaultdict(
        lambda: collections.defaultdict(PruneStats))
    # backend -> (counter, sector) -> [count, total]
    sectors = collections.defaultdict(
        lambda: collections.defaultdict(lambda: [0, 0]))
    bad_lines = 0
    events = 0

    with path.open() as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                ev = json.loads(raw)
            except json.JSONDecodeError:
                bad_lines += 1
                continue
            events += 1
            backend = ev.get("backend", "(unknown)")
            kind = ev.get("kind")
            name = ev.get("name", "?")
            if kind == "deadline":
                tasks[backend][name].add_deadline(ev)
                key = (ev.get("cycle", -1), ev.get("period", -1))
                periods[backend][key][ev.get("outcome", "?")] += 1
            elif kind == "task":
                tasks[backend][name].add_task(ev)
                if "broadphase" in ev:
                    pruning[backend][(name, ev["broadphase"])].add(ev)
            elif kind == "counter" and "sector" in ev:
                cell = sectors[backend][(name, ev["sector"])]
                cell[0] += 1
                cell[1] += ev.get("value", 0)

    if bad_lines:
        print(f"warning: {bad_lines} unparseable line(s) skipped",
              file=sys.stderr)
    if events == 0:
        print(f"no trace events in {path}")
        return 1

    for backend in sorted(tasks):
        print(f"\n== {backend} ==")
        print(f"{'task':<10} {'met':>6} {'missed':>7} {'skipped':>8} "
              f"{'worst slack [ms]':>17} {'mean modeled [ms]':>18}")
        for name in sorted(tasks[backend]):
            st = tasks[backend][name]
            mean = (sum(st.modeled) / len(st.modeled)) if st.modeled else None
            print(f"{name:<10} {st.outcomes['met']:>6} "
                  f"{st.outcomes['missed']:>7} {st.outcomes['skipped']:>8} "
                  f"{fmt_ms(st.worst_slack):>17} {fmt_ms(mean):>18}")

        if pruning[backend]:
            print("\nbroadphase pruning (mean per task execution):")
            print(f"{'task':<10} {'mode':<6} {'runs':>5} "
                  f"{'candidates':>12} {'exact tests':>12} {'kept':>7}")
            for (name, mode) in sorted(pruning[backend]):
                ps = pruning[backend][(name, mode)]
                cand = ps.candidates / ps.events
                test = ps.tests / ps.events
                kept = f"{test / cand:6.1%}" if cand else "     -"
                print(f"{name:<10} {mode:<6} {ps.events:>5} "
                      f"{cand:>12.1f} {test:>12.1f} {kept:>7}")

        if sectors[backend]:
            print("\nper-sector rollup (sharded host runs):")
            print(f"{'counter':<24} {'sector':>7} {'events':>7} "
                  f"{'mean':>10} {'total':>12}")
            for (counter, sector) in sorted(sectors[backend]):
                count, total = sectors[backend][(counter, sector)]
                mean = total / count if count else 0.0
                print(f"{counter:<24} {sector:>7} {count:>7} "
                      f"{mean:>10.1f} {total:>12}")

        trouble = {key: counts for key, counts in periods[backend].items()
                   if counts["missed"] or counts["skipped"]}
        if not trouble:
            print("all periods clean (no misses, no skips)")
            continue
        print(f"\nperiods with misses or skips ({len(trouble)}):")
        print(f"{'cycle':>6} {'period':>7} {'met':>5} {'missed':>7} "
              f"{'skipped':>8}")
        for (cycle, period) in sorted(trouble):
            counts = trouble[(cycle, period)]
            print(f"{cycle:>6} {period:>7} {counts['met']:>5} "
                  f"{counts['missed']:>7} {counts['skipped']:>8}")
    return 0


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    path = pathlib.Path(sys.argv[1])
    if not path.exists():
        print(f"no such file: {path}")
        return 2
    return summarize(path)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. piped into head
        raise SystemExit(0)
