file(REMOVE_RECURSE
  "CMakeFiles/batcher_test.dir/batcher_test.cpp.o"
  "CMakeFiles/batcher_test.dir/batcher_test.cpp.o.d"
  "batcher_test"
  "batcher_test.pdb"
  "batcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
