file(REMOVE_RECURSE
  "CMakeFiles/cuda_kernels_test.dir/cuda_kernels_test.cpp.o"
  "CMakeFiles/cuda_kernels_test.dir/cuda_kernels_test.cpp.o.d"
  "cuda_kernels_test"
  "cuda_kernels_test.pdb"
  "cuda_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuda_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
