# Empty dependencies file for cuda_kernels_test.
# This may be replaced when dependencies are built.
