file(REMOVE_RECURSE
  "CMakeFiles/task23_reference_test.dir/task23_reference_test.cpp.o"
  "CMakeFiles/task23_reference_test.dir/task23_reference_test.cpp.o.d"
  "task23_reference_test"
  "task23_reference_test.pdb"
  "task23_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task23_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
