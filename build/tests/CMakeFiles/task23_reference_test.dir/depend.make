# Empty dependencies file for task23_reference_test.
# This may be replaced when dependencies are built.
