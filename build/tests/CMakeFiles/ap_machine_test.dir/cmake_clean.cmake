file(REMOVE_RECURSE
  "CMakeFiles/ap_machine_test.dir/ap_machine_test.cpp.o"
  "CMakeFiles/ap_machine_test.dir/ap_machine_test.cpp.o.d"
  "ap_machine_test"
  "ap_machine_test.pdb"
  "ap_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
