# Empty dependencies file for simd_lockstep_test.
# This may be replaced when dependencies are built.
