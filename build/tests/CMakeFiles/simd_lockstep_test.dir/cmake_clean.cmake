file(REMOVE_RECURSE
  "CMakeFiles/simd_lockstep_test.dir/simd_lockstep_test.cpp.o"
  "CMakeFiles/simd_lockstep_test.dir/simd_lockstep_test.cpp.o.d"
  "simd_lockstep_test"
  "simd_lockstep_test.pdb"
  "simd_lockstep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_lockstep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
