# Empty dependencies file for towers_test.
# This may be replaced when dependencies are built.
