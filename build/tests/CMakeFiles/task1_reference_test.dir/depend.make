# Empty dependencies file for task1_reference_test.
# This may be replaced when dependencies are built.
