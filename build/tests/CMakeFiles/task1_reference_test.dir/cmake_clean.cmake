file(REMOVE_RECURSE
  "CMakeFiles/task1_reference_test.dir/task1_reference_test.cpp.o"
  "CMakeFiles/task1_reference_test.dir/task1_reference_test.cpp.o.d"
  "task1_reference_test"
  "task1_reference_test.pdb"
  "task1_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task1_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
