# Empty dependencies file for core_vec2_test.
# This may be replaced when dependencies are built.
