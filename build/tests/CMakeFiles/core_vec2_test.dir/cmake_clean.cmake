file(REMOVE_RECURSE
  "CMakeFiles/core_vec2_test.dir/core_vec2_test.cpp.o"
  "CMakeFiles/core_vec2_test.dir/core_vec2_test.cpp.o.d"
  "core_vec2_test"
  "core_vec2_test.pdb"
  "core_vec2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_vec2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
