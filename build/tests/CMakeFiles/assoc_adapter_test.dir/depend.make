# Empty dependencies file for assoc_adapter_test.
# This may be replaced when dependencies are built.
