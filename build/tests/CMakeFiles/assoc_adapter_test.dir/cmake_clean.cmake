file(REMOVE_RECURSE
  "CMakeFiles/assoc_adapter_test.dir/assoc_adapter_test.cpp.o"
  "CMakeFiles/assoc_adapter_test.dir/assoc_adapter_test.cpp.o.d"
  "assoc_adapter_test"
  "assoc_adapter_test.pdb"
  "assoc_adapter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
