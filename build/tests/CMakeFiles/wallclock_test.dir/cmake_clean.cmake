file(REMOVE_RECURSE
  "CMakeFiles/wallclock_test.dir/wallclock_test.cpp.o"
  "CMakeFiles/wallclock_test.dir/wallclock_test.cpp.o.d"
  "wallclock_test"
  "wallclock_test.pdb"
  "wallclock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wallclock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
