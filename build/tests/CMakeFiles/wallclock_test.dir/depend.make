# Empty dependencies file for wallclock_test.
# This may be replaced when dependencies are built.
