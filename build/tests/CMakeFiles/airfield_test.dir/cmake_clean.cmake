file(REMOVE_RECURSE
  "CMakeFiles/airfield_test.dir/airfield_test.cpp.o"
  "CMakeFiles/airfield_test.dir/airfield_test.cpp.o.d"
  "airfield_test"
  "airfield_test.pdb"
  "airfield_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airfield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
