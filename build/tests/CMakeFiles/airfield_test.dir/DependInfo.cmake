
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/airfield_test.cpp" "tests/CMakeFiles/airfield_test.dir/airfield_test.cpp.o" "gcc" "tests/CMakeFiles/airfield_test.dir/airfield_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atm/CMakeFiles/atm_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/atm_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/atm_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/atm_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/mimd/CMakeFiles/atm_mimd.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/atm_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/airfield/CMakeFiles/atm_airfield.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
