# Empty dependencies file for airfield_test.
# This may be replaced when dependencies are built.
