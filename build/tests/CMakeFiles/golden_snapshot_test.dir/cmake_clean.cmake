file(REMOVE_RECURSE
  "CMakeFiles/golden_snapshot_test.dir/golden_snapshot_test.cpp.o"
  "CMakeFiles/golden_snapshot_test.dir/golden_snapshot_test.cpp.o.d"
  "golden_snapshot_test"
  "golden_snapshot_test.pdb"
  "golden_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
