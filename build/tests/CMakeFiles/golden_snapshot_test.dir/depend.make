# Empty dependencies file for golden_snapshot_test.
# This may be replaced when dependencies are built.
