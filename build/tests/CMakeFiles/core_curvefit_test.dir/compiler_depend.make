# Empty compiler generated dependencies file for core_curvefit_test.
# This may be replaced when dependencies are built.
