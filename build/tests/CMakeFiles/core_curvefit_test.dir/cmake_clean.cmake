file(REMOVE_RECURSE
  "CMakeFiles/core_curvefit_test.dir/core_curvefit_test.cpp.o"
  "CMakeFiles/core_curvefit_test.dir/core_curvefit_test.cpp.o.d"
  "core_curvefit_test"
  "core_curvefit_test.pdb"
  "core_curvefit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_curvefit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
