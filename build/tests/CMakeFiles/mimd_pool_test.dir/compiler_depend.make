# Empty compiler generated dependencies file for mimd_pool_test.
# This may be replaced when dependencies are built.
