file(REMOVE_RECURSE
  "CMakeFiles/mimd_pool_test.dir/mimd_pool_test.cpp.o"
  "CMakeFiles/mimd_pool_test.dir/mimd_pool_test.cpp.o.d"
  "mimd_pool_test"
  "mimd_pool_test.pdb"
  "mimd_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimd_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
