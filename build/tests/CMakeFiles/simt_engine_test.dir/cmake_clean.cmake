file(REMOVE_RECURSE
  "CMakeFiles/simt_engine_test.dir/simt_engine_test.cpp.o"
  "CMakeFiles/simt_engine_test.dir/simt_engine_test.cpp.o.d"
  "simt_engine_test"
  "simt_engine_test.pdb"
  "simt_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
