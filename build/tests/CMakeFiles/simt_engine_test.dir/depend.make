# Empty dependencies file for simt_engine_test.
# This may be replaced when dependencies are built.
