file(REMOVE_RECURSE
  "CMakeFiles/vector_backend_test.dir/vector_backend_test.cpp.o"
  "CMakeFiles/vector_backend_test.dir/vector_backend_test.cpp.o.d"
  "vector_backend_test"
  "vector_backend_test.pdb"
  "vector_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
