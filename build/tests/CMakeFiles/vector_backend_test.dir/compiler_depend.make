# Empty compiler generated dependencies file for vector_backend_test.
# This may be replaced when dependencies are built.
