# Empty compiler generated dependencies file for sporadic_test.
# This may be replaced when dependencies are built.
