file(REMOVE_RECURSE
  "CMakeFiles/sporadic_test.dir/sporadic_test.cpp.o"
  "CMakeFiles/sporadic_test.dir/sporadic_test.cpp.o.d"
  "sporadic_test"
  "sporadic_test.pdb"
  "sporadic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sporadic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
