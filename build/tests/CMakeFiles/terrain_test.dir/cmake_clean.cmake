file(REMOVE_RECURSE
  "CMakeFiles/terrain_test.dir/terrain_test.cpp.o"
  "CMakeFiles/terrain_test.dir/terrain_test.cpp.o.d"
  "terrain_test"
  "terrain_test.pdb"
  "terrain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
