# Empty compiler generated dependencies file for terrain_test.
# This may be replaced when dependencies are built.
