# Empty compiler generated dependencies file for extended_tasks_test.
# This may be replaced when dependencies are built.
