file(REMOVE_RECURSE
  "CMakeFiles/extended_tasks_test.dir/extended_tasks_test.cpp.o"
  "CMakeFiles/extended_tasks_test.dir/extended_tasks_test.cpp.o.d"
  "extended_tasks_test"
  "extended_tasks_test.pdb"
  "extended_tasks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
