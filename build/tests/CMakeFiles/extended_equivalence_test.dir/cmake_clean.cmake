file(REMOVE_RECURSE
  "CMakeFiles/extended_equivalence_test.dir/extended_equivalence_test.cpp.o"
  "CMakeFiles/extended_equivalence_test.dir/extended_equivalence_test.cpp.o.d"
  "extended_equivalence_test"
  "extended_equivalence_test.pdb"
  "extended_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
