# Empty compiler generated dependencies file for extended_equivalence_test.
# This may be replaced when dependencies are built.
