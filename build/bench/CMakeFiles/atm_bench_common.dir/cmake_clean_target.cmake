file(REMOVE_RECURSE
  "libatm_bench_common.a"
)
