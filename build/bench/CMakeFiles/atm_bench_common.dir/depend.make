# Empty dependencies file for atm_bench_common.
# This may be replaced when dependencies are built.
