file(REMOVE_RECURSE
  "CMakeFiles/atm_bench_common.dir/common.cpp.o"
  "CMakeFiles/atm_bench_common.dir/common.cpp.o.d"
  "libatm_bench_common.a"
  "libatm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
