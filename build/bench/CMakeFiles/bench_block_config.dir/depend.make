# Empty dependencies file for bench_block_config.
# This may be replaced when dependencies are built.
