file(REMOVE_RECURSE
  "CMakeFiles/bench_block_config.dir/bench_block_config.cpp.o"
  "CMakeFiles/bench_block_config.dir/bench_block_config.cpp.o.d"
  "bench_block_config"
  "bench_block_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
