file(REMOVE_RECURSE
  "CMakeFiles/bench_radar_load.dir/bench_radar_load.cpp.o"
  "CMakeFiles/bench_radar_load.dir/bench_radar_load.cpp.o.d"
  "bench_radar_load"
  "bench_radar_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_radar_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
