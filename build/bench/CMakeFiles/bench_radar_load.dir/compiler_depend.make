# Empty compiler generated dependencies file for bench_radar_load.
# This may be replaced when dependencies are built.
