# Empty compiler generated dependencies file for bench_fig5_task1_nvidia.
# This may be replaced when dependencies are built.
