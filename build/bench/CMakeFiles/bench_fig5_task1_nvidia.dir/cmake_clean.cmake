file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_task1_nvidia.dir/bench_fig5_task1_nvidia.cpp.o"
  "CMakeFiles/bench_fig5_task1_nvidia.dir/bench_fig5_task1_nvidia.cpp.o.d"
  "bench_fig5_task1_nvidia"
  "bench_fig5_task1_nvidia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_task1_nvidia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
