# Empty dependencies file for bench_fig8_curvefit_task1_880m.
# This may be replaced when dependencies are built.
