file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_curvefit_task1_880m.dir/bench_fig8_curvefit_task1_880m.cpp.o"
  "CMakeFiles/bench_fig8_curvefit_task1_880m.dir/bench_fig8_curvefit_task1_880m.cpp.o.d"
  "bench_fig8_curvefit_task1_880m"
  "bench_fig8_curvefit_task1_880m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_curvefit_task1_880m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
