file(REMOVE_RECURSE
  "CMakeFiles/bench_simdization_normalized.dir/bench_simdization_normalized.cpp.o"
  "CMakeFiles/bench_simdization_normalized.dir/bench_simdization_normalized.cpp.o.d"
  "bench_simdization_normalized"
  "bench_simdization_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simdization_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
