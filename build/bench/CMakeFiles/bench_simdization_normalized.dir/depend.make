# Empty dependencies file for bench_simdization_normalized.
# This may be replaced when dependencies are built.
