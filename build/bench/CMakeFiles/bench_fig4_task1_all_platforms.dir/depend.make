# Empty dependencies file for bench_fig4_task1_all_platforms.
# This may be replaced when dependencies are built.
