file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_task1_all_platforms.dir/bench_fig4_task1_all_platforms.cpp.o"
  "CMakeFiles/bench_fig4_task1_all_platforms.dir/bench_fig4_task1_all_platforms.cpp.o.d"
  "bench_fig4_task1_all_platforms"
  "bench_fig4_task1_all_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_task1_all_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
