file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_curvefit_task23_9800gt.dir/bench_fig9_curvefit_task23_9800gt.cpp.o"
  "CMakeFiles/bench_fig9_curvefit_task23_9800gt.dir/bench_fig9_curvefit_task23_9800gt.cpp.o.d"
  "bench_fig9_curvefit_task23_9800gt"
  "bench_fig9_curvefit_task23_9800gt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_curvefit_task23_9800gt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
