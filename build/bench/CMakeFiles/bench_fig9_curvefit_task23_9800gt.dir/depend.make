# Empty dependencies file for bench_fig9_curvefit_task23_9800gt.
# This may be replaced when dependencies are built.
