file(REMOVE_RECURSE
  "CMakeFiles/bench_sporadic_queries.dir/bench_sporadic_queries.cpp.o"
  "CMakeFiles/bench_sporadic_queries.dir/bench_sporadic_queries.cpp.o.d"
  "bench_sporadic_queries"
  "bench_sporadic_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sporadic_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
