# Empty dependencies file for bench_sporadic_queries.
# This may be replaced when dependencies are built.
