file(REMOVE_RECURSE
  "CMakeFiles/bench_deadline_misses.dir/bench_deadline_misses.cpp.o"
  "CMakeFiles/bench_deadline_misses.dir/bench_deadline_misses.cpp.o.d"
  "bench_deadline_misses"
  "bench_deadline_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadline_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
