file(REMOVE_RECURSE
  "CMakeFiles/bench_determinism.dir/bench_determinism.cpp.o"
  "CMakeFiles/bench_determinism.dir/bench_determinism.cpp.o.d"
  "bench_determinism"
  "bench_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
