# Empty dependencies file for bench_determinism.
# This may be replaced when dependencies are built.
