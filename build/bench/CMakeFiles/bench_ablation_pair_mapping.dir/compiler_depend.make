# Empty compiler generated dependencies file for bench_ablation_pair_mapping.
# This may be replaced when dependencies are built.
