file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_task23_nvidia.dir/bench_fig7_task23_nvidia.cpp.o"
  "CMakeFiles/bench_fig7_task23_nvidia.dir/bench_fig7_task23_nvidia.cpp.o.d"
  "bench_fig7_task23_nvidia"
  "bench_fig7_task23_nvidia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_task23_nvidia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
