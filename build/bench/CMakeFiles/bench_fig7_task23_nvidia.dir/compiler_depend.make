# Empty compiler generated dependencies file for bench_fig7_task23_nvidia.
# This may be replaced when dependencies are built.
