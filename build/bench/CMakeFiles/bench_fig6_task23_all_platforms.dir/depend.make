# Empty dependencies file for bench_fig6_task23_all_platforms.
# This may be replaced when dependencies are built.
