file(REMOVE_RECURSE
  "CMakeFiles/device_compare.dir/device_compare.cpp.o"
  "CMakeFiles/device_compare.dir/device_compare.cpp.o.d"
  "device_compare"
  "device_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
