# Empty dependencies file for device_compare.
# This may be replaced when dependencies are built.
