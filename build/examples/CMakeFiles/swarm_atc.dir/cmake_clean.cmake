file(REMOVE_RECURSE
  "CMakeFiles/swarm_atc.dir/swarm_atc.cpp.o"
  "CMakeFiles/swarm_atc.dir/swarm_atc.cpp.o.d"
  "swarm_atc"
  "swarm_atc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_atc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
