# Empty compiler generated dependencies file for swarm_atc.
# This may be replaced when dependencies are built.
