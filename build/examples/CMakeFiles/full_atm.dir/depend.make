# Empty dependencies file for full_atm.
# This may be replaced when dependencies are built.
