file(REMOVE_RECURSE
  "CMakeFiles/full_atm.dir/full_atm.cpp.o"
  "CMakeFiles/full_atm.dir/full_atm.cpp.o.d"
  "full_atm"
  "full_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
