file(REMOVE_RECURSE
  "CMakeFiles/deadline_monitor.dir/deadline_monitor.cpp.o"
  "CMakeFiles/deadline_monitor.dir/deadline_monitor.cpp.o.d"
  "deadline_monitor"
  "deadline_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
