# Empty dependencies file for deadline_monitor.
# This may be replaced when dependencies are built.
