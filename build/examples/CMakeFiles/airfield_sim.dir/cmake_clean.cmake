file(REMOVE_RECURSE
  "CMakeFiles/airfield_sim.dir/airfield_sim.cpp.o"
  "CMakeFiles/airfield_sim.dir/airfield_sim.cpp.o.d"
  "airfield_sim"
  "airfield_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airfield_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
