# Empty dependencies file for airfield_sim.
# This may be replaced when dependencies are built.
