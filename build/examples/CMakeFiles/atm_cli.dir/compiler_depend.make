# Empty compiler generated dependencies file for atm_cli.
# This may be replaced when dependencies are built.
