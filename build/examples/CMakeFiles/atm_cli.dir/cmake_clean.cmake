file(REMOVE_RECURSE
  "CMakeFiles/atm_cli.dir/atm_cli.cpp.o"
  "CMakeFiles/atm_cli.dir/atm_cli.cpp.o.d"
  "atm_cli"
  "atm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
