# Empty dependencies file for atm_rt.
# This may be replaced when dependencies are built.
