file(REMOVE_RECURSE
  "CMakeFiles/atm_rt.dir/deadline.cpp.o"
  "CMakeFiles/atm_rt.dir/deadline.cpp.o.d"
  "CMakeFiles/atm_rt.dir/schedule.cpp.o"
  "CMakeFiles/atm_rt.dir/schedule.cpp.o.d"
  "libatm_rt.a"
  "libatm_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
