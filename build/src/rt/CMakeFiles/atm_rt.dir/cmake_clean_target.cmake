file(REMOVE_RECURSE
  "libatm_rt.a"
)
