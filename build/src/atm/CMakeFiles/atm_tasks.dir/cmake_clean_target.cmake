file(REMOVE_RECURSE
  "libatm_tasks.a"
)
