
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atm/ap_backend.cpp" "src/atm/CMakeFiles/atm_tasks.dir/ap_backend.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/ap_backend.cpp.o.d"
  "/root/repo/src/atm/backend.cpp" "src/atm/CMakeFiles/atm_tasks.dir/backend.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/backend.cpp.o.d"
  "/root/repo/src/atm/batcher.cpp" "src/atm/CMakeFiles/atm_tasks.dir/batcher.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/batcher.cpp.o.d"
  "/root/repo/src/atm/clearspeed_backend.cpp" "src/atm/CMakeFiles/atm_tasks.dir/clearspeed_backend.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/clearspeed_backend.cpp.o.d"
  "/root/repo/src/atm/cuda_backend.cpp" "src/atm/CMakeFiles/atm_tasks.dir/cuda_backend.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/cuda_backend.cpp.o.d"
  "/root/repo/src/atm/cuda_kernels.cpp" "src/atm/CMakeFiles/atm_tasks.dir/cuda_kernels.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/cuda_kernels.cpp.o.d"
  "/root/repo/src/atm/extended/advisory.cpp" "src/atm/CMakeFiles/atm_tasks.dir/extended/advisory.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/extended/advisory.cpp.o.d"
  "/root/repo/src/atm/extended/display.cpp" "src/atm/CMakeFiles/atm_tasks.dir/extended/display.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/extended/display.cpp.o.d"
  "/root/repo/src/atm/extended/full_pipeline.cpp" "src/atm/CMakeFiles/atm_tasks.dir/extended/full_pipeline.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/extended/full_pipeline.cpp.o.d"
  "/root/repo/src/atm/extended/multiradar.cpp" "src/atm/CMakeFiles/atm_tasks.dir/extended/multiradar.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/extended/multiradar.cpp.o.d"
  "/root/repo/src/atm/extended/sporadic.cpp" "src/atm/CMakeFiles/atm_tasks.dir/extended/sporadic.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/extended/sporadic.cpp.o.d"
  "/root/repo/src/atm/extended/terrain_task.cpp" "src/atm/CMakeFiles/atm_tasks.dir/extended/terrain_task.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/extended/terrain_task.cpp.o.d"
  "/root/repo/src/atm/mimd_backend.cpp" "src/atm/CMakeFiles/atm_tasks.dir/mimd_backend.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/mimd_backend.cpp.o.d"
  "/root/repo/src/atm/pipeline.cpp" "src/atm/CMakeFiles/atm_tasks.dir/pipeline.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/pipeline.cpp.o.d"
  "/root/repo/src/atm/platforms.cpp" "src/atm/CMakeFiles/atm_tasks.dir/platforms.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/platforms.cpp.o.d"
  "/root/repo/src/atm/reference/collision.cpp" "src/atm/CMakeFiles/atm_tasks.dir/reference/collision.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/reference/collision.cpp.o.d"
  "/root/repo/src/atm/reference/correlate.cpp" "src/atm/CMakeFiles/atm_tasks.dir/reference/correlate.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/reference/correlate.cpp.o.d"
  "/root/repo/src/atm/reference_backend.cpp" "src/atm/CMakeFiles/atm_tasks.dir/reference_backend.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/reference_backend.cpp.o.d"
  "/root/repo/src/atm/scenarios.cpp" "src/atm/CMakeFiles/atm_tasks.dir/scenarios.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/scenarios.cpp.o.d"
  "/root/repo/src/atm/vector_backend.cpp" "src/atm/CMakeFiles/atm_tasks.dir/vector_backend.cpp.o" "gcc" "src/atm/CMakeFiles/atm_tasks.dir/vector_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/atm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/atm_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/atm_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/atm_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/mimd/CMakeFiles/atm_mimd.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/atm_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/airfield/CMakeFiles/atm_airfield.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
