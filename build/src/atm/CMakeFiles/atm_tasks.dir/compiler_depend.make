# Empty compiler generated dependencies file for atm_tasks.
# This may be replaced when dependencies are built.
