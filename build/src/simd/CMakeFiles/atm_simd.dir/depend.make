# Empty dependencies file for atm_simd.
# This may be replaced when dependencies are built.
