file(REMOVE_RECURSE
  "CMakeFiles/atm_simd.dir/lockstep.cpp.o"
  "CMakeFiles/atm_simd.dir/lockstep.cpp.o.d"
  "libatm_simd.a"
  "libatm_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
