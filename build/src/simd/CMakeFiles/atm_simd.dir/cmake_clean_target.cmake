file(REMOVE_RECURSE
  "libatm_simd.a"
)
