file(REMOVE_RECURSE
  "CMakeFiles/atm_mimd.dir/thread_pool.cpp.o"
  "CMakeFiles/atm_mimd.dir/thread_pool.cpp.o.d"
  "CMakeFiles/atm_mimd.dir/vector_model.cpp.o"
  "CMakeFiles/atm_mimd.dir/vector_model.cpp.o.d"
  "CMakeFiles/atm_mimd.dir/xeon_model.cpp.o"
  "CMakeFiles/atm_mimd.dir/xeon_model.cpp.o.d"
  "libatm_mimd.a"
  "libatm_mimd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_mimd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
