# Empty dependencies file for atm_mimd.
# This may be replaced when dependencies are built.
