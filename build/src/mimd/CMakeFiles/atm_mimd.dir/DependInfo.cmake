
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mimd/thread_pool.cpp" "src/mimd/CMakeFiles/atm_mimd.dir/thread_pool.cpp.o" "gcc" "src/mimd/CMakeFiles/atm_mimd.dir/thread_pool.cpp.o.d"
  "/root/repo/src/mimd/vector_model.cpp" "src/mimd/CMakeFiles/atm_mimd.dir/vector_model.cpp.o" "gcc" "src/mimd/CMakeFiles/atm_mimd.dir/vector_model.cpp.o.d"
  "/root/repo/src/mimd/xeon_model.cpp" "src/mimd/CMakeFiles/atm_mimd.dir/xeon_model.cpp.o" "gcc" "src/mimd/CMakeFiles/atm_mimd.dir/xeon_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/atm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
