file(REMOVE_RECURSE
  "libatm_mimd.a"
)
