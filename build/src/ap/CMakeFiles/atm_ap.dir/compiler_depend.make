# Empty compiler generated dependencies file for atm_ap.
# This may be replaced when dependencies are built.
