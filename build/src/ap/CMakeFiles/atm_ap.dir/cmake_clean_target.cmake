file(REMOVE_RECURSE
  "libatm_ap.a"
)
