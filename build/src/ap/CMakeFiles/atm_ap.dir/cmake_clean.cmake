file(REMOVE_RECURSE
  "CMakeFiles/atm_ap.dir/ap_machine.cpp.o"
  "CMakeFiles/atm_ap.dir/ap_machine.cpp.o.d"
  "libatm_ap.a"
  "libatm_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
