# Empty compiler generated dependencies file for atm_simt.
# This may be replaced when dependencies are built.
