file(REMOVE_RECURSE
  "CMakeFiles/atm_simt.dir/device.cpp.o"
  "CMakeFiles/atm_simt.dir/device.cpp.o.d"
  "CMakeFiles/atm_simt.dir/device_spec.cpp.o"
  "CMakeFiles/atm_simt.dir/device_spec.cpp.o.d"
  "libatm_simt.a"
  "libatm_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
