file(REMOVE_RECURSE
  "libatm_simt.a"
)
