file(REMOVE_RECURSE
  "libatm_core.a"
)
