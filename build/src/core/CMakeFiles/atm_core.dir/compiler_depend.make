# Empty compiler generated dependencies file for atm_core.
# This may be replaced when dependencies are built.
