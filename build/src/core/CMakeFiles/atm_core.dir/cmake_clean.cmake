file(REMOVE_RECURSE
  "CMakeFiles/atm_core.dir/curvefit.cpp.o"
  "CMakeFiles/atm_core.dir/curvefit.cpp.o.d"
  "CMakeFiles/atm_core.dir/rng.cpp.o"
  "CMakeFiles/atm_core.dir/rng.cpp.o.d"
  "CMakeFiles/atm_core.dir/stats.cpp.o"
  "CMakeFiles/atm_core.dir/stats.cpp.o.d"
  "CMakeFiles/atm_core.dir/table.cpp.o"
  "CMakeFiles/atm_core.dir/table.cpp.o.d"
  "libatm_core.a"
  "libatm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
