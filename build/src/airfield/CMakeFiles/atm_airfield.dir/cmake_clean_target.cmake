file(REMOVE_RECURSE
  "libatm_airfield.a"
)
