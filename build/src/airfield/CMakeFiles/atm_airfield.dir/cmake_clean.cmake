file(REMOVE_RECURSE
  "CMakeFiles/atm_airfield.dir/flight_db.cpp.o"
  "CMakeFiles/atm_airfield.dir/flight_db.cpp.o.d"
  "CMakeFiles/atm_airfield.dir/history.cpp.o"
  "CMakeFiles/atm_airfield.dir/history.cpp.o.d"
  "CMakeFiles/atm_airfield.dir/radar.cpp.o"
  "CMakeFiles/atm_airfield.dir/radar.cpp.o.d"
  "CMakeFiles/atm_airfield.dir/setup.cpp.o"
  "CMakeFiles/atm_airfield.dir/setup.cpp.o.d"
  "CMakeFiles/atm_airfield.dir/terrain.cpp.o"
  "CMakeFiles/atm_airfield.dir/terrain.cpp.o.d"
  "CMakeFiles/atm_airfield.dir/towers.cpp.o"
  "CMakeFiles/atm_airfield.dir/towers.cpp.o.d"
  "libatm_airfield.a"
  "libatm_airfield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_airfield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
