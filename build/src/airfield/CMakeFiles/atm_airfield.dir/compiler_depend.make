# Empty compiler generated dependencies file for atm_airfield.
# This may be replaced when dependencies are built.
