
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/airfield/flight_db.cpp" "src/airfield/CMakeFiles/atm_airfield.dir/flight_db.cpp.o" "gcc" "src/airfield/CMakeFiles/atm_airfield.dir/flight_db.cpp.o.d"
  "/root/repo/src/airfield/history.cpp" "src/airfield/CMakeFiles/atm_airfield.dir/history.cpp.o" "gcc" "src/airfield/CMakeFiles/atm_airfield.dir/history.cpp.o.d"
  "/root/repo/src/airfield/radar.cpp" "src/airfield/CMakeFiles/atm_airfield.dir/radar.cpp.o" "gcc" "src/airfield/CMakeFiles/atm_airfield.dir/radar.cpp.o.d"
  "/root/repo/src/airfield/setup.cpp" "src/airfield/CMakeFiles/atm_airfield.dir/setup.cpp.o" "gcc" "src/airfield/CMakeFiles/atm_airfield.dir/setup.cpp.o.d"
  "/root/repo/src/airfield/terrain.cpp" "src/airfield/CMakeFiles/atm_airfield.dir/terrain.cpp.o" "gcc" "src/airfield/CMakeFiles/atm_airfield.dir/terrain.cpp.o.d"
  "/root/repo/src/airfield/towers.cpp" "src/airfield/CMakeFiles/atm_airfield.dir/towers.cpp.o" "gcc" "src/airfield/CMakeFiles/atm_airfield.dir/towers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/atm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
